//! The program zoo: every example used in the paper, plus classic kernels.
//!
//! Each function builds a fresh [`Program`]; the symbolic parameter `N` is
//! bound at execution time.

use crate::aff::Aff;
use crate::builder::ProgramBuilder;
use crate::expr::Expr;
use crate::program::Program;

/// §3's running example — the "highly simplified version of Cholesky
/// factorization":
///
/// ```text
/// do I = 1..N
///   S1: A(I) = sqrt(A(I))
///   do J = I+1..N
///     S2: A(J) = A(J) / A(I)
/// ```
pub fn simple_cholesky() -> Program {
    let mut b = ProgramBuilder::new("simple_cholesky");
    let n = b.param("N");
    let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.stmt(
            "S1",
            a,
            vec![Aff::var(i)],
            Expr::sqrt(Expr::read(a, vec![Aff::var(i)])),
        );
        b.hloop("J", Aff::var(i) + Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S2",
                a,
                vec![Aff::var(j)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(j)]),
                    Expr::read(a, vec![Aff::var(i)]),
                ),
            );
        });
    });
    b.finish()
}

/// §2's running example with concrete inner bounds (`J = I..N`):
///
/// ```text
/// do I = 1..N
///   do J = I..N
///     S1: X(I,J) = val(I+J)
///     S2: Y(I,J) = X(I,J) * 2
///   S3: Z(I) = val(I)
/// ```
pub fn running_example() -> Program {
    let mut b = ProgramBuilder::new("running_example");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let x = b.array("X", &[ext.clone(), ext.clone()]);
    let y = b.array("Y", &[ext.clone(), ext.clone()]);
    let z = b.array("Z", std::slice::from_ref(&ext));
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::var(i), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S1",
                x,
                vec![Aff::var(i), Aff::var(j)],
                Expr::index(Aff::var(i) + Aff::var(j)),
            );
            b.stmt(
                "S2",
                y,
                vec![Aff::var(i), Aff::var(j)],
                Expr::mul(
                    Expr::read(x, vec![Aff::var(i), Aff::var(j)]),
                    Expr::konst(2.0),
                ),
            );
        });
        b.stmt("S3", z, vec![Aff::var(i)], Expr::index(Aff::var(i)));
    });
    b.finish()
}

/// §2.2 / Fig. 3's perfectly nested loop:
///
/// ```text
/// do I = 1..N
///   do J = I+1..N
///     S1: A(J) = A(J) / A(I)
/// ```
pub fn perfect_nest() -> Program {
    let mut b = ProgramBuilder::new("perfect_nest");
    let n = b.param("N");
    let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::var(i) + Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S1",
                a,
                vec![Aff::var(j)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(j)]),
                    Expr::read(a, vec![Aff::var(i)]),
                ),
            );
        });
    });
    b.finish()
}

/// §5.4's augmentation example:
///
/// ```text
/// do I = 1..N
///   S1: B(I) = B(I-1) + A(I-1,I+1)
///   do J = I..N
///     S2: A(I,J) = f()          — modelled as val(I + 2·J)
/// ```
pub fn augmentation_example() -> Program {
    let mut b = ProgramBuilder::new("augmentation_example");
    let n = b.param("N");
    let a = b.array(
        "A",
        &[Aff::param(n) + Aff::konst(1), Aff::param(n) + Aff::konst(2)],
    );
    let bb = b.array("B", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.stmt(
            "S1",
            bb,
            vec![Aff::var(i)],
            Expr::add(
                Expr::read(bb, vec![Aff::var(i) - Aff::konst(1)]),
                Expr::read(
                    a,
                    vec![Aff::var(i) - Aff::konst(1), Aff::var(i) + Aff::konst(1)],
                ),
            ),
        );
        b.hloop("J", Aff::var(i), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S2",
                a,
                vec![Aff::var(i), Aff::var(j)],
                Expr::index(Aff::var(i) + Aff::var(j) * 2),
            );
        });
    });
    b.finish()
}

/// §6's full Cholesky factorization (right-looking, KIJ form):
///
/// ```text
/// do K = 1..N
///   S1: A[K][K] = sqrt(A[K][K])
///   do I = K+1..N
///     S2: A[I][K] = A[I][K] / A[K][K]
///   do J = K+1..N
///     do L = K+1..J
///       S3: A[J][L] = A[J][L] - A[J][K] * A[L][K]
/// ```
pub fn cholesky_kij() -> Program {
    let mut b = ProgramBuilder::new("cholesky_kij");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
        let k = b.loop_var("K");
        b.stmt(
            "S1",
            a,
            vec![Aff::var(k), Aff::var(k)],
            Expr::sqrt(Expr::read(a, vec![Aff::var(k), Aff::var(k)])),
        );
        b.hloop("I", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt(
                "S2",
                a,
                vec![Aff::var(i), Aff::var(k)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(i), Aff::var(k)]),
                    Expr::read(a, vec![Aff::var(k), Aff::var(k)]),
                ),
            );
        });
        b.hloop("J", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.hloop("L", Aff::var(k) + Aff::konst(1), Aff::var(j), |b| {
                let l = b.loop_var("L");
                b.stmt(
                    "S3",
                    a,
                    vec![Aff::var(j), Aff::var(l)],
                    Expr::sub(
                        Expr::read(a, vec![Aff::var(j), Aff::var(l)]),
                        Expr::mul(
                            Expr::read(a, vec![Aff::var(j), Aff::var(k)]),
                            Expr::read(a, vec![Aff::var(l), Aff::var(k)]),
                        ),
                    ),
                );
            });
        });
    });
    b.finish()
}

/// The paper's §6 *result*: traditional left-looking Cholesky, produced by
/// completing the K↔J interchange. Kept in the zoo so tests can compare
/// the framework's output against the ground truth.
///
/// ```text
/// do K = 1..N
///   do J = K..N
///     do L = 1..K-1
///       S3: A[J][K] = A[J][K] - A[J][L] * A[K][L]
///   S1: A[K][K] = sqrt(A[K][K])
///   do I = K+1..N
///     S2: A[I][K] = A[I][K] / A[K][K]
/// ```
pub fn cholesky_left_looking() -> Program {
    let mut b = ProgramBuilder::new("cholesky_left_looking");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
        let k = b.loop_var("K");
        b.hloop("J", Aff::var(k), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.hloop("L", Aff::konst(1), Aff::var(k) - Aff::konst(1), |b| {
                let l = b.loop_var("L");
                b.stmt(
                    "S3",
                    a,
                    vec![Aff::var(j), Aff::var(k)],
                    Expr::sub(
                        Expr::read(a, vec![Aff::var(j), Aff::var(k)]),
                        Expr::mul(
                            Expr::read(a, vec![Aff::var(j), Aff::var(l)]),
                            Expr::read(a, vec![Aff::var(k), Aff::var(l)]),
                        ),
                    ),
                );
            });
        });
        b.stmt(
            "S1",
            a,
            vec![Aff::var(k), Aff::var(k)],
            Expr::sqrt(Expr::read(a, vec![Aff::var(k), Aff::var(k)])),
        );
        b.hloop("I", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt(
                "S2",
                a,
                vec![Aff::var(i), Aff::var(k)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(i), Aff::var(k)]),
                    Expr::read(a, vec![Aff::var(k), Aff::var(k)]),
                ),
            );
        });
    });
    b.finish()
}

/// LU factorization without pivoting (KIJ form) — another imperfectly
/// nested matrix factorization:
///
/// ```text
/// do K = 1..N
///   do I = K+1..N
///     S1: A[I][K] = A[I][K] / A[K][K]
///   do I2 = K+1..N
///     do J = K+1..N
///       S2: A[I2][J] = A[I2][J] - A[I2][K] * A[K][J]
/// ```
pub fn lu_kij() -> Program {
    let mut b = ProgramBuilder::new("lu_kij");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
        let k = b.loop_var("K");
        b.hloop("I", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt(
                "S1",
                a,
                vec![Aff::var(i), Aff::var(k)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(i), Aff::var(k)]),
                    Expr::read(a, vec![Aff::var(k), Aff::var(k)]),
                ),
            );
        });
        b.hloop("I2", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
            let i2 = b.loop_var("I2");
            b.hloop("J", Aff::var(k) + Aff::konst(1), Aff::param(n), |b| {
                let j = b.loop_var("J");
                b.stmt(
                    "S2",
                    a,
                    vec![Aff::var(i2), Aff::var(j)],
                    Expr::sub(
                        Expr::read(a, vec![Aff::var(i2), Aff::var(j)]),
                        Expr::mul(
                            Expr::read(a, vec![Aff::var(i2), Aff::var(k)]),
                            Expr::read(a, vec![Aff::var(k), Aff::var(j)]),
                        ),
                    ),
                );
            });
        });
    });
    b.finish()
}

/// A perfectly nested wavefront recurrence (both loops carry dependences;
/// skewing exposes an inner parallel loop):
///
/// ```text
/// do I = 1..N
///   do J = 1..N
///     S1: A[I][J] = A[I-1][J] + A[I][J-1]
/// ```
pub fn wavefront() -> Program {
    let mut b = ProgramBuilder::new("wavefront");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S1",
                a,
                vec![Aff::var(i), Aff::var(j)],
                Expr::add(
                    Expr::read(a, vec![Aff::var(i) - Aff::konst(1), Aff::var(j)]),
                    Expr::read(a, vec![Aff::var(i), Aff::var(j) - Aff::konst(1)]),
                ),
            );
        });
    });
    b.finish()
}

/// Square matrix multiplication `C += A·B` — a perfectly nested loop whose
/// only dependence is the reduction on `C[I][J]` carried by `K`, so *all
/// six* loop permutations are legal (the contrast case to Cholesky):
///
/// ```text
/// do I = 1..N
///   do J = 1..N
///     do K = 1..N
///       S1: C[I][J] = C[I][J] + A[I][K] * B[K][J]
/// ```
pub fn matmul() -> Program {
    let mut b = ProgramBuilder::new("matmul");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let c = b.array("C", &[ext.clone(), ext.clone()]);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    let bb = b.array("B", &[ext.clone(), ext.clone()]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
                let k = b.loop_var("K");
                b.stmt(
                    "S1",
                    c,
                    vec![Aff::var(i), Aff::var(j)],
                    Expr::add(
                        Expr::read(c, vec![Aff::var(i), Aff::var(j)]),
                        Expr::mul(
                            Expr::read(a, vec![Aff::var(i), Aff::var(k)]),
                            Expr::read(bb, vec![Aff::var(k), Aff::var(j)]),
                        ),
                    ),
                );
            });
        });
    });
    b.finish()
}

/// A rectangular (two-parameter) wavefront — exercises multi-parameter
/// analysis and code generation:
///
/// ```text
/// do I = 1..M
///   do J = 1..N
///     S1: A[I][J] = A[I-1][J] + A[I][J-1]
/// ```
pub fn rect_wavefront() -> Program {
    let mut b = ProgramBuilder::new("rect_wavefront");
    let m = b.param("M");
    let n = b.param("N");
    let a = b.array(
        "A",
        &[Aff::param(m) + Aff::konst(1), Aff::param(n) + Aff::konst(1)],
    );
    b.hloop("I", Aff::konst(1), Aff::param(m), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S1",
                a,
                vec![Aff::var(i), Aff::var(j)],
                Expr::add(
                    Expr::read(a, vec![Aff::var(i) - Aff::konst(1), Aff::var(j)]),
                    Expr::read(a, vec![Aff::var(i), Aff::var(j) - Aff::konst(1)]),
                ),
            );
        });
    });
    b.finish()
}

/// Row-wise prefix sums — every dependence stays inside one row, so the
/// outer loop is DOALL (its direction spans the dependence matrix's
/// nullspace):
///
/// ```text
/// do I = 1..N
///   do J = 1..N
///     S1: B[I][J] = B[I][J-1] + A[I][J]
/// ```
pub fn row_prefix_sums() -> Program {
    let mut b = ProgramBuilder::new("row_prefix_sums");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone()]);
    let bb = b.array("B", &[ext.clone(), ext.clone()]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S1",
                bb,
                vec![Aff::var(i), Aff::var(j)],
                Expr::add(
                    Expr::read(bb, vec![Aff::var(i), Aff::var(j) - Aff::konst(1)]),
                    Expr::read(a, vec![Aff::var(i), Aff::var(j)]),
                ),
            );
        });
    });
    b.finish()
}

/// The §4.2 distribution result — simplified Cholesky after (illegal-in-
/// general, here structural-only) loop distribution. Used to exercise the
/// distribution/jamming matrix representations:
///
/// ```text
/// do I = 1..N
///   S1: A(I) = sqrt(A(I))
/// do I2 = 1..N
///   do J = I2+1..N
///     S2: A(J) = A(J) / A(I2)
/// ```
pub fn distributed_simple_cholesky() -> Program {
    let mut b = ProgramBuilder::new("distributed_simple_cholesky");
    let n = b.param("N");
    let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.stmt(
            "S1",
            a,
            vec![Aff::var(i)],
            Expr::sqrt(Expr::read(a, vec![Aff::var(i)])),
        );
    });
    b.hloop("I2", Aff::konst(1), Aff::param(n), |b| {
        let i2 = b.loop_var("I2");
        b.hloop("J", Aff::var(i2) + Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt(
                "S2",
                a,
                vec![Aff::var(j)],
                Expr::div(
                    Expr::read(a, vec![Aff::var(j)]),
                    Expr::read(a, vec![Aff::var(i2)]),
                ),
            );
        });
    });
    b.finish()
}

/// Two independent statement groups under one loop — legal to distribute,
/// used to test distribution legality:
///
/// ```text
/// do I = 1..N
///   S1: X(I) = val(I)
///   S2: Y(I) = val(2·I)
/// ```
pub fn independent_pair() -> Program {
    let mut b = ProgramBuilder::new("independent_pair");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let x = b.array("X", std::slice::from_ref(&ext));
    let y = b.array("Y", std::slice::from_ref(&ext));
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.stmt("S1", x, vec![Aff::var(i)], Expr::index(Aff::var(i)));
        b.stmt("S2", y, vec![Aff::var(i)], Expr::index(Aff::var(i) * 2));
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zoo_programs_validate() {
        for p in [
            simple_cholesky(),
            running_example(),
            perfect_nest(),
            augmentation_example(),
            cholesky_kij(),
            cholesky_left_looking(),
            lu_kij(),
            matmul(),
            wavefront(),
            rect_wavefront(),
            row_prefix_sums(),
            distributed_simple_cholesky(),
            independent_pair(),
        ] {
            assert!(p.validate().is_ok(), "{} fails validation", p.name());
        }
    }

    #[test]
    fn cholesky_kij_shape() {
        let p = cholesky_kij();
        assert_eq!(p.loops().count(), 4);
        assert_eq!(p.stmts().count(), 3);
        assert_eq!(p.root().len(), 1);
        let s3 = p.stmts().find(|&s| p.stmt_decl(s).name == "S3").unwrap();
        assert_eq!(p.loops_surrounding(s3).len(), 3); // K, J, L
    }

    #[test]
    fn distributed_has_two_roots() {
        let p = distributed_simple_cholesky();
        assert_eq!(p.root().len(), 2);
    }
}
