//! Statement bodies: array accesses and arithmetic expressions.

use crate::aff::Aff;
use crate::program::ArrayId;

/// A subscripted array reference `A[e₁, …, e_d]` with affine subscripts.
#[derive(Clone, Debug, PartialEq)]
pub struct Access {
    /// The array.
    pub array: ArrayId,
    /// One affine subscript per dimension.
    pub idxs: Vec<Aff>,
}

/// The right-hand side of an atomic statement.
///
/// Expressions are real enough to execute (so transformed programs can be
/// checked for bitwise-equal results) but deliberately minimal: affine index
/// values, array reads, and the arithmetic that matrix factorizations need.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Const(f64),
    /// The value of an affine expression of loop variables/parameters,
    /// converted to a value. (Used by "A(I,J) = f()"-style synthetic
    /// statements — a deterministic function of the iteration point.)
    Index(Aff),
    /// An array read.
    Read(Access),
    /// Negation.
    Neg(Box<Expr>),
    /// Square root (Cholesky's pivot).
    Sqrt(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // constructors build AST nodes, not arithmetic
impl Expr {
    /// A constant.
    pub fn konst(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// An affine index value.
    pub fn index(a: Aff) -> Expr {
        Expr::Index(a)
    }

    /// An array read.
    pub fn read(array: ArrayId, idxs: Vec<Aff>) -> Expr {
        Expr::Read(Access { array, idxs })
    }

    /// `sqrt(e)`.
    pub fn sqrt(e: Expr) -> Expr {
        Expr::Sqrt(Box::new(e))
    }

    /// `-e`.
    pub fn neg(e: Expr) -> Expr {
        Expr::Neg(Box::new(e))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`.
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// Collect every array read in the expression, left-to-right.
    pub fn collect_reads(&self, out: &mut Vec<Access>) {
        match self {
            Expr::Const(_) | Expr::Index(_) => {}
            Expr::Read(a) => out.push(a.clone()),
            Expr::Neg(e) | Expr::Sqrt(e) => e.collect_reads(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }

    /// Rewrite every affine expression (subscripts and index values) with
    /// `f`. Used by code generation to substitute old loop variables with
    /// expressions in the new ones.
    pub fn map_affs(&self, f: &dyn Fn(&Aff) -> Aff) -> Expr {
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Index(a) => Expr::Index(f(a)),
            Expr::Read(acc) => Expr::Read(Access {
                array: acc.array,
                idxs: acc.idxs.iter().map(f).collect(),
            }),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_affs(f))),
            Expr::Sqrt(e) => Expr::Sqrt(Box::new(e.map_affs(f))),
            Expr::Add(a, b) => Expr::Add(Box::new(a.map_affs(f)), Box::new(b.map_affs(f))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.map_affs(f)), Box::new(b.map_affs(f))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.map_affs(f)), Box::new(b.map_affs(f))),
            Expr::Div(a, b) => Expr::Div(Box::new(a.map_affs(f)), Box::new(b.map_affs(f))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayId, LoopId};
    use crate::VarKey;

    #[test]
    fn collect_reads_in_order() {
        let a = ArrayId(0);
        let i = Aff::var(VarKey::Loop(LoopId(0)));
        let e = Expr::add(
            Expr::read(a, vec![i.clone()]),
            Expr::mul(
                Expr::read(a, vec![i.clone() + Aff::konst(1)]),
                Expr::konst(2.0),
            ),
        );
        let mut reads = Vec::new();
        e.collect_reads(&mut reads);
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].idxs[0], i);
        assert_eq!(reads[1].idxs[0], i + Aff::konst(1));
    }

    #[test]
    fn map_affs_rewrites_everywhere() {
        let a = ArrayId(0);
        let i = Aff::var(VarKey::Loop(LoopId(0)));
        let e = Expr::sub(Expr::read(a, vec![i.clone()]), Expr::index(i.clone()));
        let shifted = e.map_affs(&|x| x.clone() + Aff::konst(10));
        let mut reads = Vec::new();
        shifted.collect_reads(&mut reads);
        assert_eq!(reads[0].idxs[0], i.clone() + Aff::konst(10));
        match shifted {
            Expr::Sub(_, idx) => match *idx {
                Expr::Index(x) => assert_eq!(x, i + Aff::konst(10)),
                _ => panic!("expected index"),
            },
            _ => panic!("expected sub"),
        }
    }
}
