//! Structural AST surgery: child reordering, loop distribution, loop
//! jamming (fusion), loop splitting (strip-mining).
//!
//! These build the *target programs* of the paper's §4.2 AST
//! transformations — plus strip-mining, which sits outside the paper's
//! matrix framework (see DESIGN.md → "Tiling"). Legality is the caller's
//! business (`inl-core`); the operations here are purely structural and
//! keep statement ids stable so instance mappings can be tracked across
//! the surgery.

use crate::aff::{Aff, VarKey};
use crate::program::{Bound, LoopDecl, LoopId, Node, Program};
use inl_linalg::Int;

impl Program {
    /// A copy with the children of `parent` (`None` = virtual root)
    /// reordered: old child `j` moves to index `perm[j]`.
    ///
    /// # Panics
    /// If `perm` is not a permutation of the child indices.
    pub fn reorder_children(&self, parent: Option<LoopId>, perm: &[usize]) -> Program {
        let mut out = self.clone();
        let children = match parent {
            None => &mut out.root,
            Some(l) => &mut out.loops[l.0].children,
        };
        assert_eq!(perm.len(), children.len(), "permutation arity mismatch");
        let old = children.clone();
        for (j, &nj) in perm.iter().enumerate() {
            children[nj] = old[j];
        }
        out.name = format!("{}_reordered", self.name);
        out
    }

    /// Distribute loop `l` at `split`: the loop is replaced by two copies,
    /// the first keeping children `..split`, the second (a fresh loop with
    /// the same bounds) getting children `split..`. All references to `l`'s
    /// index variable inside the moved subtree are rewritten to the new
    /// loop's variable. Returns the program and the fresh loop's id.
    ///
    /// # Panics
    /// If `split` is not in `1..children.len()`.
    pub fn distribute_loop(&self, l: LoopId, split: usize) -> (Program, LoopId) {
        let mut out = self.clone();
        let nchildren = out.loops[l.0].children.len();
        assert!(
            split >= 1 && split < nchildren,
            "split {split} out of range for {nchildren} children"
        );
        let moved: Vec<Node> = out.loops[l.0].children.split_off(split);
        let new_id = LoopId(out.loops.len());
        let old_decl = out.loops[l.0].clone();
        out.loops.push(LoopDecl {
            name: format!("{}_2", old_decl.name),
            lower: old_decl.lower.clone(),
            upper: old_decl.upper.clone(),
            step: old_decl.step,
            children: moved.clone(),
            parallel: false,
        });
        // rewrite l -> new_id in the moved subtree
        let subst = |a: &Aff| -> Aff {
            a.substitute_loops(&|id: LoopId| {
                if id == l {
                    Aff::var(VarKey::Loop(new_id))
                } else {
                    Aff::var(VarKey::Loop(id))
                }
            })
        };
        rewrite_subtree(&mut out, &moved, &subst);
        // insert the new loop right after l in its parent's child list
        let parent = self.loops_surrounding_loop(l).last().copied();
        let siblings = match parent {
            None => &mut out.root,
            Some(q) => &mut out.loops[q.0].children,
        };
        let idx = siblings
            .iter()
            .position(|&n| n == Node::Loop(l))
            .expect("loop in parent");
        siblings.insert(idx + 1, Node::Loop(new_id));
        out.name = format!("{}_distributed", self.name);
        (out, new_id)
    }

    /// Jam (fuse) two adjacent sibling loops: children `idx` and `idx + 1`
    /// of `parent` must both be loops with structurally identical bounds
    /// (after renaming the second's variable to the first's). The second
    /// loop's body is appended to the first's; references to the second
    /// loop's variable are rewritten.
    ///
    /// # Panics
    /// If the children are not adjacent sibling loops with matching bounds
    /// and steps.
    pub fn jam_loops(&self, parent: Option<LoopId>, idx: usize) -> Program {
        let mut out = self.clone();
        let siblings = match parent {
            None => out.root.clone(),
            Some(q) => out.loops[q.0].children.clone(),
        };
        assert!(idx + 1 < siblings.len(), "no adjacent sibling to jam");
        let (Node::Loop(a), Node::Loop(b)) = (siblings[idx], siblings[idx + 1]) else {
            panic!("jam targets must both be loops");
        };
        // bounds of b with b's variable renamed to a must equal a's bounds
        let rename = |aff: &Aff| -> Aff {
            aff.substitute_loops(&|id: LoopId| {
                if id == b {
                    Aff::var(VarKey::Loop(a))
                } else {
                    Aff::var(VarKey::Loop(id))
                }
            })
        };
        let rebound = |bd: &Bound| Bound {
            terms: bd.terms.iter().map(&rename).collect(),
        };
        assert_eq!(
            rebound(&out.loops[b.0].lower),
            out.loops[a.0].lower,
            "jam: lower bounds differ"
        );
        assert_eq!(
            rebound(&out.loops[b.0].upper),
            out.loops[a.0].upper,
            "jam: upper bounds differ"
        );
        assert_eq!(
            out.loops[a.0].step, out.loops[b.0].step,
            "jam: steps differ"
        );
        // rewrite b -> a in b's subtree, then append children
        let moved = out.loops[b.0].children.clone();
        rewrite_subtree(&mut out, &moved, &rename);
        out.loops[b.0].children.clear();
        out.loops[a.0].children.extend(moved);
        // remove b from the sibling list (the dead LoopDecl remains,
        // harmlessly detached)
        let siblings = match parent {
            None => &mut out.root,
            Some(q) => &mut out.loops[q.0].children,
        };
        siblings.remove(idx + 1);
        out.name = format!("{}_jammed", self.name);
        out
    }

    /// Split (strip-mine) loop `l` into an outer×tile pair: a fresh outer
    /// loop `{name}o` ranges over tile numbers and the original loop is
    /// nested inside it, confined to one tile. The original index keeps
    /// its **absolute** value — index reconstruction is the identity
    /// `l = l` with the tile relation `tile·o ≤ l ≤ tile·o + tile − 1`
    /// enforced by the inner bounds — so no subscript, guard, or rhs
    /// rewriting happens and every dependence distance on `l` is
    /// preserved exactly. Returns the program and the outer loop's id.
    ///
    /// Bound construction (divisor arithmetic on [`Aff`], consumed by the
    /// usual max-of-ceilings / min-of-floors [`Bound`] semantics):
    ///
    /// * outer lower: each original lower term `t` becomes
    ///   `(t + 1 − tile) / tile` — its ceiling is `floor(lower/tile)`,
    ///   the first tile with any point;
    /// * outer upper: each original upper term `t` becomes `t / tile` —
    ///   its floor is `floor(upper/tile)`, the last tile with any point;
    /// * inner: the original terms stay and two clamp terms are pushed,
    ///   lower `tile·o` and upper `tile·o + tile − 1`. The multi-term
    ///   `Bound` min/max natively expresses the partial last tile, so no
    ///   explicit min-guard statement is needed.
    ///
    /// # Panics
    /// If `tile < 2`, `l` has a non-unit step, or `l` is detached.
    pub fn split_loop(&self, l: LoopId, tile: Int) -> (Program, LoopId) {
        assert!(tile >= 2, "tile size {tile} must be at least 2");
        assert_eq!(self.loops[l.0].step, 1, "cannot split a stepped loop");
        let mut out = self.clone();
        let outer = LoopId(out.loops.len());
        let old = &out.loops[l.0];
        let lower = Bound {
            terms: old
                .lower
                .terms
                .iter()
                .map(|t| (t.clone() + Aff::konst(1 - tile)).exact_div(tile))
                .collect(),
        };
        let upper = Bound {
            terms: old.upper.terms.iter().map(|t| t.exact_div(tile)).collect(),
        };
        out.loops.push(LoopDecl {
            name: format!("{}o", old.name),
            lower,
            upper,
            step: 1,
            children: vec![Node::Loop(l)],
            parallel: false,
        });
        let clamp = Aff::var(VarKey::Loop(outer)) * tile;
        out.loops[l.0].lower.terms.push(clamp.clone());
        out.loops[l.0]
            .upper
            .terms
            .push(clamp + Aff::konst(tile - 1));
        // the outer loop takes the original's place in its parent
        let parent = self.loops_surrounding_loop(l).last().copied();
        let siblings = match parent {
            None => &mut out.root,
            Some(q) => &mut out.loops[q.0].children,
        };
        let idx = siblings
            .iter()
            .position(|&n| n == Node::Loop(l))
            .expect("split target must be attached");
        siblings[idx] = Node::Loop(outer);
        out.name = format!("{}_split", self.name);
        (out, outer)
    }
}

/// Rewrite every affine expression in the subtree (nested loop bounds,
/// statement subscripts, guards, rhs) with `subst`.
fn rewrite_subtree(p: &mut Program, nodes: &[Node], subst: &dyn Fn(&Aff) -> Aff) {
    for &n in nodes {
        match n {
            Node::Loop(l) => {
                let children = p.loops[l.0].children.clone();
                let ld = &mut p.loops[l.0];
                ld.lower.terms = ld.lower.terms.iter().map(subst).collect();
                ld.upper.terms = ld.upper.terms.iter().map(subst).collect();
                rewrite_subtree(p, &children, subst);
            }
            Node::Stmt(s) => {
                let sd = &mut p.stmts[s.0];
                sd.write.idxs = sd.write.idxs.iter().map(subst).collect();
                sd.rhs = sd.rhs.map_affs(subst);
                for g in &mut sd.guards {
                    match g {
                        crate::program::Guard::Ge(a)
                        | crate::program::Guard::Eq(a)
                        | crate::program::Guard::Div(a, _) => *a = subst(a),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn reorder_children_of_root_loop() {
        let p = zoo::simple_cholesky();
        let i = p.loops().next().unwrap();
        let q = p.reorder_children(Some(i), &[1, 0]);
        // S1 was first; now the J loop is first
        assert!(matches!(q.loop_decl(i).children[0], Node::Loop(_)));
        assert!(matches!(q.loop_decl(i).children[1], Node::Stmt(_)));
        assert!(q.validate().is_ok());
    }

    #[test]
    fn distribute_simple_cholesky_structure() {
        // distributing the I loop of simple Cholesky yields the §4.2 shape
        let p = zoo::simple_cholesky();
        let i = p.loops().next().unwrap();
        let (q, new_loop) = p.distribute_loop(i, 1);
        assert_eq!(q.root().len(), 2);
        assert_eq!(q.root()[1], Node::Loop(new_loop));
        assert_eq!(q.loop_decl(i).children.len(), 1);
        assert_eq!(q.loop_decl(new_loop).children.len(), 1);
        assert!(q.validate().is_ok(), "{:?}", q.validate());
        // the moved J loop's bound now references the new loop variable
        let Node::Loop(j) = q.loop_decl(new_loop).children[0] else {
            panic!()
        };
        let lower = &q.loop_decl(j).lower.terms[0];
        assert_eq!(lower.coeff(VarKey::Loop(new_loop)), 1);
        assert_eq!(lower.coeff(VarKey::Loop(i)), 0);
    }

    #[test]
    fn jam_round_trips_distribution() {
        let p = zoo::simple_cholesky();
        let i = p.loops().next().unwrap();
        let (q, _new) = p.distribute_loop(i, 1);
        let r = q.jam_loops(None, 0);
        assert_eq!(r.root().len(), 1);
        let Node::Loop(merged) = r.root()[0] else {
            panic!()
        };
        assert_eq!(r.loop_decl(merged).children.len(), 2);
        assert!(r.validate().is_ok(), "{:?}", r.validate());
        // pseudo-code equals the original's
        assert_eq!(r.to_pseudocode(), p.to_pseudocode());
    }

    #[test]
    fn split_matmul_k_structure() {
        let p = zoo::matmul();
        let k = p.loops().nth(2).unwrap();
        let (q, outer) = p.split_loop(k, 16);
        assert!(q.validate().is_ok(), "{:?}", q.validate());
        assert_eq!(q.loop_decl(outer).name, "Ko");
        // outer replaced K in J's children; K is the outer's only child
        assert_eq!(q.loop_decl(outer).children, vec![Node::Loop(k)]);
        let j = p.loops().nth(1).unwrap();
        assert!(q.loop_decl(j).children.contains(&Node::Loop(outer)));
        assert!(!q.loop_decl(j).children.contains(&Node::Loop(k)));
        // K ∈ [1, N] ⇒ Ko lower ceil((1+1−16)/16) = floor(1/16) = 0,
        // upper floor(N/16); inner K gains the 16·Ko clamp pair
        assert_eq!(q.loop_decl(outer).lower.terms[0].eval(&|_| 0).ceil(), 0);
        assert_eq!(q.loop_decl(k).lower.terms.len(), 2);
        assert_eq!(q.loop_decl(k).upper.terms.len(), 2);
        assert_eq!(q.loop_decl(k).lower.terms[1].coeff(VarKey::Loop(outer)), 16);
        assert_eq!(q.loop_decl(k).upper.terms[1].constant(), 16 - 1);
    }

    #[test]
    fn split_covers_exactly_the_original_range() {
        // enumerate the split ranges concretely for lo=1, hi=21, tile=8:
        // tiles 0..=2, union of clamped inner ranges must be 1..=21 exactly
        let p = zoo::matmul();
        let k = p.loops().nth(2).unwrap();
        let (q, outer) = p.split_loop(k, 8);
        let n = 21i128;
        let kd = q.loop_decl(k);
        let od = q.loop_decl(outer);
        let mut seen = Vec::new();
        let base = |v: VarKey| match v {
            VarKey::Param(_) => n,
            _ => 0,
        };
        let olo = od.lower.eval_lower(&base);
        let ohi = od.upper.eval_upper(&base);
        assert_eq!((olo, ohi), (0, 2));
        for o in olo..=ohi {
            let env = move |v: VarKey| match v {
                VarKey::Param(_) => n,
                VarKey::Loop(id) if id == outer => o,
                _ => 0,
            };
            let lo = kd.lower.eval_lower(&env);
            let hi = kd.upper.eval_upper(&env);
            seen.extend(lo..=hi);
        }
        assert_eq!(seen, (1..=n).collect::<Vec<_>>());
    }

    #[test]
    fn split_triangular_loop_validates() {
        // cholesky_kij's L loop has bounds referencing two outer loops
        let p = zoo::cholesky_kij();
        let l = p
            .loops()
            .find(|&l| p.loop_decl(l).name == "L")
            .expect("L loop");
        let (q, outer) = p.split_loop(l, 32);
        assert!(q.validate().is_ok(), "{:?}", q.validate());
        // the outer's bounds carry divisor-32 terms
        assert!(q
            .loop_decl(outer)
            .lower
            .terms
            .iter()
            .all(|t| t.divisor() == 32));
    }

    #[test]
    #[should_panic(expected = "tile size 1 must be at least 2")]
    fn split_rejects_degenerate_tile() {
        let p = zoo::matmul();
        let k = p.loops().nth(2).unwrap();
        let _ = p.split_loop(k, 1);
    }

    #[test]
    #[should_panic(expected = "lower bounds differ")]
    fn jam_rejects_mismatched_bounds() {
        let mut b = crate::ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", a, vec![Aff::var(i)], crate::Expr::konst(1.0));
        });
        b.hloop("I2", Aff::konst(2), Aff::param(n), |b| {
            let i = b.loop_var("I2");
            b.stmt("S2", a, vec![Aff::var(i)], crate::Expr::konst(2.0));
        });
        let p = b.finish();
        let _ = p.jam_loops(None, 0);
    }
}
