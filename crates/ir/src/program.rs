//! The program AST: loops, statements, arrays, parameters.

use crate::aff::{Aff, VarKey};
use crate::expr::{Access, Expr};
use inl_linalg::Int;
use inl_poly::{LinExpr, System};

/// Identifies a symbolic parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub usize);

/// Identifies a loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

/// Identifies an atomic statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub usize);

/// Identifies an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

/// A child of a loop (or of the virtual root): a nested loop or a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// A nested loop.
    Loop(LoopId),
    /// An atomic statement.
    Stmt(StmtId),
}

/// One side of a loop bound: for a lower bound the value is
/// `max over terms of ceil(expr_num / div)`; for an upper bound
/// `min over terms of floor(expr_num / div)`. Each term is an [`Aff`]
/// whose own divisor provides `div`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// The bound terms; must be non-empty.
    pub terms: Vec<Aff>,
}

impl Bound {
    /// A single-term bound.
    pub fn single(a: Aff) -> Self {
        Bound { terms: vec![a] }
    }

    /// Evaluate as a lower bound (max of ceilings).
    pub fn eval_lower(&self, lookup: &dyn Fn(VarKey) -> Int) -> Int {
        self.terms
            .iter()
            .map(|a| a.eval(lookup).ceil())
            .max()
            .expect("empty bound")
    }

    /// Evaluate as an upper bound (min of floors).
    pub fn eval_upper(&self, lookup: &dyn Fn(VarKey) -> Int) -> Int {
        self.terms
            .iter()
            .map(|a| a.eval(lookup).floor())
            .min()
            .expect("empty bound")
    }
}

/// A guard on a statement: the statement instance executes only when the
/// guard holds. Produced by code generation (§5.5: singular-loop conditions
/// and lattice-membership tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Guard {
    /// `expr ≥ 0` (the expression's divisor must be 1).
    Ge(Aff),
    /// `expr = 0` (the expression's divisor must be 1).
    Eq(Aff),
    /// `modulus` divides `expr` (numerator form; divisor must be 1).
    Div(Aff, Int),
}

/// A loop declaration.
#[derive(Clone, Debug)]
pub struct LoopDecl {
    /// Source-level name of the index variable.
    pub name: String,
    /// Lower bound (max of ceilings).
    pub lower: Bound,
    /// Upper bound (min of floors).
    pub upper: Bound,
    /// Step (must be ≥ 1; non-unit steps arise from non-unimodular
    /// transformations).
    pub step: Int,
    /// Ordered children.
    pub children: Vec<Node>,
    /// True if the loop has been proven to carry no dependences and may be
    /// executed in parallel.
    pub parallel: bool,
}

/// An atomic statement: `write ← rhs`, possibly guarded.
#[derive(Clone, Debug)]
pub struct StmtDecl {
    /// Source-level label (e.g. `"S1"`).
    pub name: String,
    /// The single array element written.
    pub write: Access,
    /// The right-hand side.
    pub rhs: Expr,
    /// Guards; all must hold for the instance to execute.
    pub guards: Vec<Guard>,
}

/// An array declaration: name and per-dimension extents (affine in the
/// parameters). Valid indices for dimension `d` are `0 .. extent_d`.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension, affine in the parameters only.
    pub dims: Vec<Aff>,
}

/// An imperfectly nested loop program (one AST, possibly with several
/// top-level items under a virtual root).
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) params: Vec<String>,
    pub(crate) loops: Vec<LoopDecl>,
    pub(crate) stmts: Vec<StmtDecl>,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) root: Vec<Node>,
    /// Assumptions on the parameters, each `aff ≥ 0` (e.g. `N - 1 ≥ 0`).
    /// Legality's exact tests and code generation's bound comparisons
    /// reason under these.
    pub(crate) assumes: Vec<Aff>,
}

impl Program {
    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter names, indexed by [`ParamId`].
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Loop declaration.
    pub fn loop_decl(&self, l: LoopId) -> &LoopDecl {
        &self.loops[l.0]
    }

    /// Statement declaration.
    pub fn stmt_decl(&self, s: StmtId) -> &StmtDecl {
        &self.stmts[s.0]
    }

    /// Array declaration.
    pub fn array_decl(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.0]
    }

    /// All loop ids.
    pub fn loops(&self) -> impl Iterator<Item = LoopId> {
        (0..self.loops.len()).map(LoopId)
    }

    /// All statement ids.
    pub fn stmts(&self) -> impl Iterator<Item = StmtId> {
        (0..self.stmts.len()).map(StmtId)
    }

    /// All array ids.
    pub fn arrays(&self) -> impl Iterator<Item = ArrayId> {
        (0..self.arrays.len()).map(ArrayId)
    }

    /// Top-level nodes (children of the virtual root).
    pub fn root(&self) -> &[Node] {
        &self.root
    }

    /// Parameter assumptions (`aff ≥ 0` each).
    pub fn assumes(&self) -> &[Aff] {
        &self.assumes
    }

    /// The assumptions as a constraint system over any space whose first
    /// `nparams()` variables are the parameters (assumptions may only
    /// mention parameters).
    pub fn assumption_system(&self, space: usize) -> System {
        assert!(space >= self.nparams());
        let mut sys = System::new(space);
        for a in &self.assumes {
            assert_eq!(a.divisor(), 1, "assumption with divisor");
            let mut coeffs = vec![0; space];
            for &(v, c) in a.terms() {
                match v {
                    VarKey::Param(pr) => coeffs[pr.0] = c,
                    VarKey::Loop(_) => panic!("assumption mentions a loop variable"),
                }
            }
            sys.add_ge(LinExpr::from_parts(coeffs, a.constant()));
        }
        sys
    }

    /// Number of parameters.
    pub fn nparams(&self) -> usize {
        self.params.len()
    }

    /// Number of loop declarations (compiler-facing: sizes the loop-variable
    /// register file; includes loops detached from the tree by surgery).
    pub fn nloops(&self) -> usize {
        self.loops.len()
    }

    /// Number of statement declarations.
    pub fn nstmts(&self) -> usize {
        self.stmts.len()
    }

    /// Number of array declarations.
    pub fn narrays(&self) -> usize {
        self.arrays.len()
    }

    /// The loops surrounding a statement, outside-in.
    pub fn loops_surrounding(&self, s: StmtId) -> Vec<LoopId> {
        let mut path = Vec::new();
        self.find_path(Node::Stmt(s), &mut path);
        path
    }

    /// The loops surrounding a loop, outside-in (excluding itself).
    pub fn loops_surrounding_loop(&self, l: LoopId) -> Vec<LoopId> {
        let mut path = Vec::new();
        self.find_path(Node::Loop(l), &mut path);
        path
    }

    fn find_path(&self, target: Node, path: &mut Vec<LoopId>) -> bool {
        fn walk(p: &Program, nodes: &[Node], target: Node, path: &mut Vec<LoopId>) -> bool {
            for &n in nodes {
                if n == target {
                    return true;
                }
                if let Node::Loop(l) = n {
                    path.push(l);
                    if walk(p, &p.loops[l.0].children, target, path) {
                        return true;
                    }
                    path.pop();
                }
            }
            false
        }
        walk(self, &self.root, target, path)
    }

    /// Statements in syntactic order (depth-first, left-to-right): the
    /// `⪯ₛ` relation of Definition 1.
    pub fn stmts_in_syntactic_order(&self) -> Vec<StmtId> {
        fn walk(p: &Program, nodes: &[Node], out: &mut Vec<StmtId>) {
            for &n in nodes {
                match n {
                    Node::Stmt(s) => out.push(s),
                    Node::Loop(l) => walk(p, &p.loops[l.0].children, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &self.root, &mut out);
        out
    }

    /// True iff `a ⪯ₛ b` (syntactic order, Definition 1; reflexive).
    pub fn syntactically_before(&self, a: StmtId, b: StmtId) -> bool {
        let order = self.stmts_in_syntactic_order();
        let pa = order
            .iter()
            .position(|&s| s == a)
            .expect("stmt not in program");
        let pb = order
            .iter()
            .position(|&s| s == b)
            .expect("stmt not in program");
        pa <= pb
    }

    /// Size of the program's constraint-variable space: parameters first,
    /// then loop variables.
    pub fn space(&self) -> usize {
        self.params.len() + self.loops.len()
    }

    /// Constraint-space index of a parameter.
    pub fn param_var(&self, p: ParamId) -> usize {
        p.0
    }

    /// Constraint-space index of a loop variable.
    pub fn loop_var_index(&self, l: LoopId) -> usize {
        self.params.len() + l.0
    }

    /// Convert an [`Aff`] with divisor 1 into a [`LinExpr`] over the
    /// program space (optionally widened to `space ≥ self.space()`).
    ///
    /// # Panics
    /// If the divisor is not 1.
    pub fn to_linexpr(&self, a: &Aff, space: usize) -> LinExpr {
        assert_eq!(a.divisor(), 1, "to_linexpr: expression has a divisor");
        assert!(space >= self.space());
        let mut coeffs = vec![0; space];
        for &(v, c) in a.terms() {
            let idx = match v {
                VarKey::Param(p) => self.param_var(p),
                VarKey::Loop(l) => self.loop_var_index(l),
            };
            coeffs[idx] = c;
        }
        LinExpr::from_parts(coeffs, a.constant())
    }

    /// The iteration space of a statement as a constraint system over the
    /// program space (§3: "loop bounds"): for every surrounding loop,
    /// `lower ≤ i ≤ upper`, plus the statement's guards. Parameters are
    /// unconstrained. `Div` guards and non-unit steps are modelled with
    /// existential variables appended after the program space; the returned
    /// system's arity is therefore `≥ space()`.
    pub fn iteration_system(&self, s: StmtId) -> System {
        // Count existential variables needed.
        let surrounding = self.loops_surrounding(s);
        let mut nexist = 0;
        for &l in &surrounding {
            if self.loops[l.0].step != 1 {
                nexist += 1;
            }
        }
        for g in &self.stmts[s.0].guards {
            if matches!(g, Guard::Div(_, _)) {
                nexist += 1;
            }
        }
        let space = self.space() + nexist;
        let mut sys = self.assumption_system(space);
        let mut next_exist = self.space();

        for &l in &surrounding {
            let ld = &self.loops[l.0];
            let iv = LinExpr::var(space, self.loop_var_index(l));
            for t in &ld.lower.terms {
                // i ≥ ceil(e/d)  ⇔  d·i - e ≥ 0
                let d = t.divisor();
                let mut num = t.clone();
                // numerator form: divisor 1 version scaled by d
                num = Aff::from_terms(num.terms().to_vec(), num.constant());
                let e = self.to_linexpr(&num, space);
                sys.add_ge(iv.clone() * d - e);
            }
            for t in &ld.upper.terms {
                let d = t.divisor();
                let num = Aff::from_terms(t.terms().to_vec(), t.constant());
                let e = self.to_linexpr(&num, space);
                sys.add_ge(e - iv.clone() * d);
            }
            if ld.step != 1 {
                // i = lower + step·q. Only single-term lower bounds with
                // divisor 1 are supported with non-unit steps.
                assert_eq!(
                    ld.lower.terms.len(),
                    1,
                    "non-unit step with multi-term lower bound unsupported"
                );
                let lo = &ld.lower.terms[0];
                assert_eq!(lo.divisor(), 1, "non-unit step with divided lower bound");
                let q = LinExpr::var(space, next_exist);
                next_exist += 1;
                let e = self.to_linexpr(lo, space);
                sys.add_eq(iv.clone() - e - q * ld.step);
            }
        }
        for g in &self.stmts[s.0].guards {
            match g {
                Guard::Ge(a) => {
                    let e = self.to_linexpr(a, space);
                    sys.add_ge(e);
                }
                Guard::Eq(a) => {
                    let e = self.to_linexpr(a, space);
                    sys.add_eq(e);
                }
                Guard::Div(a, m) => {
                    let e = self.to_linexpr(a, space);
                    let q = LinExpr::var(space, next_exist);
                    next_exist += 1;
                    sys.add_eq(e - q * *m);
                }
            }
        }
        sys
    }

    /// Replace a statement's guards (used by code generation's guard
    /// simplification pass).
    pub fn set_stmt_guards(&mut self, s: StmtId, guards: Vec<Guard>) {
        self.stmts[s.0].guards = guards;
    }

    /// Mark a loop parallel (or not). The caller asserts the loop carries
    /// no dependence — typically established via the framework's
    /// parallel-slot analysis.
    pub fn set_loop_parallel(&mut self, l: LoopId, parallel: bool) {
        self.loops[l.0].parallel = parallel;
    }

    /// Append a guard to a statement (used by statement sinking).
    pub fn stmts_guard_push(&mut self, s: StmtId, guard: Guard) {
        self.stmts[s.0].guards.push(guard);
    }

    /// Replace a loop's child list (structural surgery; the caller is
    /// responsible for keeping each node in exactly one place — validated
    /// by [`Program::validate`]).
    pub fn set_loop_children(&mut self, l: LoopId, children: Vec<Node>) {
        self.loops[l.0].children = children;
    }

    /// Validate structural invariants; returns an error description on the
    /// first violation. Called by the builder; also useful after manual
    /// surgery on a program.
    pub fn validate(&self) -> Result<(), String> {
        // Every loop and statement appears exactly once in the tree.
        let mut loop_seen = vec![0usize; self.loops.len()];
        let mut stmt_seen = vec![0usize; self.stmts.len()];
        fn walk(
            p: &Program,
            nodes: &[Node],
            loop_seen: &mut [usize],
            stmt_seen: &mut [usize],
        ) -> Result<(), String> {
            for &n in nodes {
                match n {
                    Node::Loop(l) => {
                        if l.0 >= loop_seen.len() {
                            return Err(format!("dangling loop id {:?}", l));
                        }
                        loop_seen[l.0] += 1;
                        walk(p, &p.loops[l.0].children, loop_seen, stmt_seen)?;
                    }
                    Node::Stmt(s) => {
                        if s.0 >= stmt_seen.len() {
                            return Err(format!("dangling stmt id {:?}", s));
                        }
                        stmt_seen[s.0] += 1;
                    }
                }
            }
            Ok(())
        }
        walk(self, &self.root, &mut loop_seen, &mut stmt_seen)?;
        // A loop may be detached (0 occurrences) after surgery such as
        // jamming, but may never appear twice.
        for (i, &c) in loop_seen.iter().enumerate() {
            if c > 1 {
                return Err(format!("loop {i} appears {c} times in the tree"));
            }
        }
        for (i, &c) in stmt_seen.iter().enumerate() {
            if c != 1 {
                return Err(format!("stmt {i} appears {c} times in the tree"));
            }
        }
        // Bounds may reference parameters and strictly-outer loops only
        // (skipping detached loops, whose bounds are meaningless).
        for l in self.loops() {
            if loop_seen[l.0] == 0 {
                continue;
            }
            let outer = self.loops_surrounding_loop(l);
            let ld = &self.loops[l.0];
            for t in ld.lower.terms.iter().chain(&ld.upper.terms) {
                for v in t.vars() {
                    if let VarKey::Loop(dep) = v {
                        if !outer.contains(&dep) {
                            return Err(format!(
                                "bound of loop {} references non-outer loop {}",
                                ld.name, self.loops[dep.0].name
                            ));
                        }
                    }
                }
            }
            if ld.step < 1 {
                return Err(format!("loop {} has non-positive step", ld.name));
            }
        }
        // Statement accesses reference declared arrays with correct arity
        // and only surrounding loop variables.
        for s in self.stmts() {
            let surround = self.loops_surrounding(s);
            let sd = &self.stmts[s.0];
            let check_access = |acc: &Access| -> Result<(), String> {
                if acc.array.0 >= self.arrays.len() {
                    return Err(format!("stmt {} references undeclared array", sd.name));
                }
                let decl = &self.arrays[acc.array.0];
                if acc.idxs.len() != decl.dims.len() {
                    return Err(format!(
                        "stmt {} indexes array {} with {} subscripts (declared {})",
                        sd.name,
                        decl.name,
                        acc.idxs.len(),
                        decl.dims.len()
                    ));
                }
                for idx in &acc.idxs {
                    for v in idx.vars() {
                        if let VarKey::Loop(dep) = v {
                            if !surround.contains(&dep) {
                                return Err(format!(
                                    "stmt {} subscript references loop {} that does not surround it",
                                    sd.name, self.loops[dep.0].name
                                ));
                            }
                        }
                    }
                }
                Ok(())
            };
            check_access(&sd.write)?;
            let mut reads = Vec::new();
            sd.rhs.collect_reads(&mut reads);
            for r in reads {
                check_access(&r)?;
            }
            for g in &sd.guards {
                let a = match g {
                    Guard::Ge(a) | Guard::Eq(a) | Guard::Div(a, _) => a,
                };
                if a.divisor() != 1 {
                    return Err(format!("stmt {} guard has a divisor", sd.name));
                }
                for v in a.vars() {
                    if let VarKey::Loop(dep) = v {
                        if !surround.contains(&dep) {
                            return Err(format!(
                                "stmt {} guard references loop {} that does not surround it",
                                sd.name, self.loops[dep.0].name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn simple_cholesky_structure() {
        let p = zoo::simple_cholesky();
        assert_eq!(p.stmts().count(), 2);
        assert_eq!(p.loops().count(), 2);
        assert!(p.validate().is_ok());
        let order = p.stmts_in_syntactic_order();
        assert_eq!(
            order
                .iter()
                .map(|&s| p.stmt_decl(s).name.clone())
                .collect::<Vec<_>>(),
            vec!["S1", "S2"]
        );
        // S1 is under I only; S2 under I and J
        let s1 = order[0];
        let s2 = order[1];
        assert_eq!(p.loops_surrounding(s1).len(), 1);
        assert_eq!(p.loops_surrounding(s2).len(), 2);
        assert!(p.syntactically_before(s1, s2));
        assert!(!p.syntactically_before(s2, s1));
        assert!(p.syntactically_before(s1, s1));
    }

    #[test]
    fn iteration_system_triangular() {
        let p = zoo::simple_cholesky();
        let s2 = p.stmts_in_syntactic_order()[1];
        let sys = p.iteration_system(s2);
        // space: 1 param (N) + 2 loops
        assert_eq!(sys.nvars(), 3);
        // point (N=4, I=2, J=3) is in S2's iteration space
        assert!(sys.contains(&[4, 2, 3]));
        // J must exceed I
        assert!(!sys.contains(&[4, 2, 2]));
        assert!(!sys.contains(&[4, 0, 1]));
        assert!(!sys.contains(&[4, 2, 5]));
    }

    #[test]
    fn validate_catches_misuse() {
        // hand-build a program where a statement indexes with a non-
        // surrounding loop variable
        let mut b = crate::ProgramBuilder::new("bad");
        let n = b.param("N");
        let a = b.array("A", &[Aff::param(n)]);
        let mut captured = None;
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            captured = Some(b.loop_var("I"));
            let i = captured.unwrap();
            b.stmt("S1", a, vec![Aff::var(i)], Expr::konst(1.0));
        });
        // second top-level loop whose statement uses the first loop's var
        b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
            b.stmt("S2", a, vec![Aff::var(captured.unwrap())], Expr::konst(2.0));
        });
        let p = b.finish_unchecked();
        assert!(p.validate().is_err());
    }
}
