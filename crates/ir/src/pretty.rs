//! Pseudo-code rendering of programs, matching the paper's `do` notation.

use crate::aff::{Aff, VarKey};
use crate::expr::{Access, Expr};
use crate::program::{Bound, Guard, Node, Program};
use std::fmt::Write;

impl Program {
    /// Human-readable name of a variable.
    pub fn var_name(&self, v: VarKey) -> String {
        match v {
            VarKey::Param(p) => self.params[p.0].clone(),
            VarKey::Loop(l) => self.loops[l.0].name.clone(),
        }
    }

    /// Render an affine expression with program names.
    pub fn show_aff(&self, a: &Aff) -> String {
        let name = |v: VarKey| self.var_name(v);
        format!("{}", a.display_with(&name))
    }

    fn show_bound(&self, b: &Bound, lower: bool) -> String {
        if b.terms.len() == 1 {
            self.show_aff(&b.terms[0])
        } else {
            let inner = b
                .terms
                .iter()
                .map(|t| self.show_aff(t))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}({inner})", if lower { "max" } else { "min" })
        }
    }

    fn show_access(&self, a: &Access) -> String {
        let idxs = a
            .idxs
            .iter()
            .map(|i| self.show_aff(i))
            .collect::<Vec<_>>()
            .join("][");
        format!("{}[{idxs}]", self.arrays[a.array.0].name)
    }

    /// Render an expression with program names.
    pub fn show_expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => format!("{v}"),
            Expr::Index(a) => format!("val({})", self.show_aff(a)),
            Expr::Read(a) => self.show_access(a),
            Expr::Neg(x) => format!("-({})", self.show_expr(x)),
            Expr::Sqrt(x) => format!("sqrt({})", self.show_expr(x)),
            Expr::Add(a, b) => format!("({} + {})", self.show_expr(a), self.show_expr(b)),
            Expr::Sub(a, b) => format!("({} - {})", self.show_expr(a), self.show_expr(b)),
            Expr::Mul(a, b) => format!("({} * {})", self.show_expr(a), self.show_expr(b)),
            Expr::Div(a, b) => format!("({} / {})", self.show_expr(a), self.show_expr(b)),
        }
    }

    fn show_guard(&self, g: &Guard) -> String {
        match g {
            Guard::Ge(a) => format!("{} >= 0", self.show_aff(a)),
            Guard::Eq(a) => format!("{} == 0", self.show_aff(a)),
            Guard::Div(a, m) => format!("({}) mod {m} == 0", self.show_aff(a)),
        }
    }

    /// Render the whole program as indented pseudo-code.
    pub fn to_pseudocode(&self) -> String {
        let mut out = String::new();
        self.render_nodes(&self.root, 0, &mut out);
        out
    }

    fn render_nodes(&self, nodes: &[Node], depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        for &n in nodes {
            match n {
                Node::Loop(l) => {
                    let ld = &self.loops[l.0];
                    let step = if ld.step != 1 {
                        format!(" step {}", ld.step)
                    } else {
                        String::new()
                    };
                    let par = if ld.parallel { " parallel" } else { "" };
                    let _ = writeln!(
                        out,
                        "{pad}do{par} {} = {}..{}{step}",
                        ld.name,
                        self.show_bound(&ld.lower, true),
                        self.show_bound(&ld.upper, false)
                    );
                    self.render_nodes(&ld.children, depth + 1, out);
                }
                Node::Stmt(s) => {
                    let sd = &self.stmts[s.0];
                    let mut d = depth;
                    for g in &sd.guards {
                        let gpad = "  ".repeat(d);
                        let _ = writeln!(out, "{gpad}if ({})", self.show_guard(g));
                        d += 1;
                    }
                    let spad = "  ".repeat(d);
                    let _ = writeln!(
                        out,
                        "{spad}{}: {} = {}",
                        sd.name,
                        self.show_access(&sd.write),
                        self.show_expr(&sd.rhs)
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::zoo;

    #[test]
    fn simple_cholesky_pseudocode() {
        let p = zoo::simple_cholesky();
        let code = p.to_pseudocode();
        assert!(code.contains("do I = 1..N"), "{code}");
        assert!(code.contains("do J = I + 1..N"), "{code}");
        assert!(code.contains("S1: A[I] = sqrt(A[I])"), "{code}");
        assert!(code.contains("S2: A[J] = (A[J] / A[I])"), "{code}");
        // indentation reflects nesting
        let lines: Vec<&str> = code.lines().collect();
        assert!(lines[0].starts_with("do"), "{code}");
        assert!(lines[1].starts_with("  S1"), "{code}");
        assert!(lines[2].starts_with("  do J"), "{code}");
        assert!(lines[3].starts_with("    S2"), "{code}");
    }

    #[test]
    fn cholesky_kij_pseudocode() {
        let p = zoo::cholesky_kij();
        let code = p.to_pseudocode();
        assert!(code.contains("do K = 1..N"), "{code}");
        assert!(code.contains("do L = K + 1..J"), "{code}");
        assert!(
            code.contains("S3: A[J][L] = (A[J][L] - (A[J][K] * A[L][K]))"),
            "{code}"
        );
    }
}
