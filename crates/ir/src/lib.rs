//! # inl-ir
//!
//! The loop-nest intermediate representation of the `inl` framework.
//!
//! A [`Program`] is an abstract syntax tree in the sense of §2 of the paper:
//! internal nodes are `do` loops with affine bounds, leaves are *atomic
//! statements* (single array assignments with an expression body). Loops may
//! be **imperfectly nested** — a loop's children are an ordered mix of
//! statements and further loops.
//!
//! The IR is deliberately executable: statements carry real expression
//! bodies ([`Expr`]) over array reads and affine index expressions, so that
//! the `inl-exec` interpreter can run a program and the test-suite can check
//! that transformed programs compute **bitwise identical** results (a legal
//! transformation preserves, per memory location, the order of all accesses,
//! so even floating-point results cannot change).
//!
//! Key types:
//!
//! * [`Aff`] — sparse affine expressions over parameters and loop variables,
//!   with an optional divisor (for non-unimodular code generation);
//! * [`Program`] / [`ProgramBuilder`] — the AST and its construction API;
//! * [`zoo`] — the paper's running examples and classic kernels
//!   (Cholesky in several shapes, LU, wavefront).
//!
//! # Example
//!
//! Build the simplified Cholesky fragment from §3 of the paper:
//!
//! ```
//! use inl_ir::{Aff, Expr, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("simple_cholesky");
//! let n = b.param("N");
//! let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
//! b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
//!     let i = b.loop_var("I");
//!     b.stmt("S1", a, vec![Aff::var(i)], Expr::sqrt(Expr::read(a, vec![Aff::var(i)])));
//!     b.hloop("J", Aff::var(i) + Aff::konst(1), Aff::param(n), |b| {
//!         let j = b.loop_var("J");
//!         b.stmt("S2", a, vec![Aff::var(j)],
//!             Expr::div(Expr::read(a, vec![Aff::var(j)]), Expr::read(a, vec![Aff::var(i)])));
//!     });
//! });
//! let prog = b.finish();
//! assert_eq!(prog.stmts().count(), 2);
//! assert_eq!(prog.loops().count(), 2);
//! ```

pub mod aff;
pub mod builder;
pub mod expr;
pub mod pretty;
pub mod program;
pub mod surgery;
pub mod zoo;

pub use aff::{Aff, VarKey};
pub use builder::ProgramBuilder;
pub use expr::{Access, Expr};
pub use program::{
    ArrayDecl, ArrayId, Bound, Guard, LoopDecl, LoopId, Node, ParamId, Program, StmtDecl, StmtId,
};

pub use inl_linalg::Int;
