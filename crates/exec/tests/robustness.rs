//! Robustness tests for the execution layer: non-unit steps, guard
//! combinations, deep nests, empty programs, and executor agreement.

use inl_exec::{run_fresh, run_traced, Interpreter, Machine, ParallelExecutor};
use inl_ir::{zoo, Aff, Bound, Expr, Guard, ProgramBuilder};

#[test]
fn non_unit_steps_execute_correct_lattice() {
    // do I = 1..N step 3: X(I) = 1
    let mut b = ProgramBuilder::new("stepped");
    let n = b.param("N");
    let x = b.array("X", &[Aff::param(n) + Aff::konst(1)]);
    b.loop_full(
        "I",
        Bound::single(Aff::konst(1)),
        Bound::single(Aff::param(n)),
        3,
        false,
        |b| {
            let i = b.loop_var("I");
            b.stmt("S", x, vec![Aff::var(i)], Expr::konst(1.0));
        },
    );
    let p = b.finish();
    let m = run_fresh(&p, &[10], &|_, _| 0.0);
    let x = m.array_by_name("X").unwrap();
    for (i, &v) in x.iter().enumerate() {
        let expect = i >= 1 && (i - 1) % 3 == 0;
        assert_eq!(v == 1.0, expect, "index {i}");
    }
}

#[test]
fn stacked_guards_all_must_hold() {
    // X(I) = 1 iff I >= 3 AND I even
    let mut b = ProgramBuilder::new("guards");
    let n = b.param("N");
    let x = b.array("X", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.stmt_guarded(
            "S",
            x,
            vec![Aff::var(i)],
            Expr::konst(1.0),
            vec![
                Guard::Ge(Aff::var(i) - Aff::konst(3)),
                Guard::Div(Aff::var(i), 2),
            ],
        );
    });
    let p = b.finish();
    let m = run_fresh(&p, &[8], &|_, _| 0.0);
    let x = m.array_by_name("X").unwrap();
    assert_eq!(x, &[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
}

#[test]
fn three_dimensional_arrays() {
    let mut b = ProgramBuilder::new("cube");
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(1);
    let a = b.array("A", &[ext.clone(), ext.clone(), ext.clone()]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
                let k = b.loop_var("K");
                b.stmt(
                    "S",
                    a,
                    vec![Aff::var(i), Aff::var(j), Aff::var(k)],
                    Expr::index(Aff::var(i) * 100 + Aff::var(j) * 10 + Aff::var(k)),
                );
            });
        });
    });
    let p = b.finish();
    let m = run_fresh(&p, &[3], &|_, _| -1.0);
    let a = m.arrays().iter().find(|a| a.name == "A").unwrap();
    assert_eq!(a.get(&[2, 3, 1]), 231.0);
    assert_eq!(a.get(&[0, 0, 0]), -1.0); // untouched boundary
}

#[test]
fn executors_agree_on_every_zoo_program() {
    // sequential interpreter vs. the (unmarked, hence sequential-order)
    // parallel executor: bitwise identical across the zoo
    for p in [
        zoo::simple_cholesky(),
        zoo::running_example(),
        zoo::perfect_nest(),
        zoo::augmentation_example(),
        zoo::cholesky_kij(),
        zoo::cholesky_left_looking(),
        zoo::lu_kij(),
        zoo::matmul(),
        zoo::wavefront(),
        zoo::row_prefix_sums(),
        zoo::independent_pair(),
    ] {
        let params: Vec<i128> = vec![5; p.nparams()];
        let init = |_: &str, idx: &[usize]| (idx.iter().sum::<usize>() + 2) as f64 * 1.75;
        let mut a = Machine::new(&p, &params, &init);
        Interpreter::new(&p).run(&mut a);
        let mut b = Machine::new(&p, &params, &init);
        ParallelExecutor::new(&p, 2).run(&mut b);
        a.same_state(&b)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
    }
}

#[test]
fn trace_multiset_invariant_under_legal_transform() {
    // a legal transformation permutes the dynamic instances but never adds
    // or drops one
    use inl_core::transform::Transform;
    let p = zoo::wavefront();
    let loops: Vec<_> = p.loops().collect();
    let result = inl_codegen::generate_seq(
        &p,
        &[Transform::Skew {
            target: loops[0],
            source: loops[1],
            factor: 1,
        }],
    )
    .expect("codegen");
    let init = |_: &str, _: &[usize]| 1.0;
    let (_, t1) = run_traced(&p, &[5], &init);
    let (_, t2) = run_traced(&result.program, &[5], &init);
    assert_eq!(t1.len(), t2.len());
    // statement names with iteration multisets must coincide after mapping
    // target iterations back is nontrivial; counts per statement suffice
    for s in p.stmts() {
        let name = &p.stmt_decl(s).name;
        let c1 = t1.count_stmt(s);
        let s2 = result.stmt_map[s.0];
        let c2 = t2.count_stmt(s2);
        assert_eq!(c1, c2, "instance count of {name}");
    }
}

#[test]
fn zero_iteration_programs() {
    // loops whose ranges are empty at runtime execute nothing, including
    // guards and subscripts that would be out of bounds if evaluated
    let mut b = ProgramBuilder::new("empty");
    let n = b.param("N");
    let x = b.array("X", &[Aff::param(n) + Aff::konst(1)]);
    b.hloop("I", Aff::param(n) + Aff::konst(5), Aff::param(n), |b| {
        let i = b.loop_var("I");
        // would be out of bounds if executed
        b.stmt(
            "S",
            x,
            vec![Aff::var(i) + Aff::konst(100)],
            Expr::konst(1.0),
        );
    });
    let p = b.finish_unchecked();
    let m = run_fresh(&p, &[3], &|_, _| 7.0);
    assert!(m.array_by_name("X").unwrap().iter().all(|&v| v == 7.0));
}
