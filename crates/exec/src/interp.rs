//! The reference interpreter.
//!
//! Executes a program exactly in its AST order: loops run from their lower
//! to their upper bound (inclusive, with step), guards are evaluated per
//! statement instance, subscripts must evaluate to integers (divisor
//! expressions from non-unimodular code generation are guarded by `Div`
//! guards so inexact divisions never reach an access).

use crate::machine::Machine;
use inl_ir::{Aff, Expr, Guard, LoopId, Node, Program, StmtId, VarKey};
use inl_linalg::Int;

/// Interpreter over one program.
/// Per-instance observation hook: `(statement, loop environment)`.
pub type InstanceHook<'p> = Box<dyn FnMut(StmtId, &[Option<Int>]) + 'p>;

pub struct Interpreter<'p> {
    program: &'p Program,
    /// Optional hook invoked before each executed statement instance with
    /// the current loop environment.
    pub on_instance: Option<InstanceHook<'p>>,
    /// Scratch subscript buffer, reused across every array access (the hot
    /// path allocates nothing).
    scratch: Vec<usize>,
    /// Executed instances not yet flushed to the `exec.instances` counter;
    /// flushed per loop completion rather than per instance.
    pending: u64,
}

impl<'p> Interpreter<'p> {
    /// Create an interpreter for `program`.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            on_instance: None,
            scratch: Vec::new(),
            pending: 0,
        }
    }

    /// Execute the program on the machine.
    pub fn run(&mut self, m: &mut Machine) {
        let _span = inl_obs::span("exec.interpret");
        let mut env: Vec<Option<Int>> = vec![None; self.program.loops().count()];
        let root: Vec<Node> = self.program.root().to_vec();
        self.run_nodes(&root, &mut env, m);
        self.flush();
    }

    #[inline]
    fn flush(&mut self) {
        if self.pending > 0 {
            inl_obs::counter_add!("exec.instances", self.pending);
        }
        self.pending = 0;
    }

    fn lookup<'e>(env: &'e [Option<Int>], params: &'e [Int]) -> impl Fn(VarKey) -> Int + 'e {
        move |v: VarKey| match v {
            VarKey::Param(p) => params[p.0],
            VarKey::Loop(l) => env[l.0].expect("loop variable read outside its loop"),
        }
    }

    fn run_nodes(&mut self, nodes: &[Node], env: &mut Vec<Option<Int>>, m: &mut Machine) {
        for &n in nodes {
            match n {
                Node::Loop(l) => self.run_loop(l, env, m),
                Node::Stmt(s) => self.run_stmt(s, env, m),
            }
        }
    }

    fn run_loop(&mut self, l: LoopId, env: &mut Vec<Option<Int>>, m: &mut Machine) {
        // `self.program` is a plain `&'p Program`, so declarations borrow
        // for 'p — no cloning in the hot loop.
        let ld = Program::loop_decl(self.program, l);
        let (lo, hi) = {
            let look = Self::lookup(env, m.params());
            (ld.lower.eval_lower(&look), ld.upper.eval_upper(&look))
        };
        let mut i = lo;
        while i <= hi {
            env[l.0] = Some(i);
            self.run_nodes(&ld.children, env, m);
            i += ld.step;
        }
        env[l.0] = None;
        // Batch the instance counter: one flush per completed loop (for an
        // innermost loop, that covers its whole trip) instead of one atomic
        // add per instance.
        self.flush();
    }

    fn run_stmt(&mut self, s: StmtId, env: &mut [Option<Int>], m: &mut Machine) {
        let sd = Program::stmt_decl(self.program, s);
        // One lookup closure per statement instance, shared by guards, the
        // rhs, and the write subscripts (it used to be rebuilt per access).
        let look = Self::lookup(env, m.params());
        for g in &sd.guards {
            let pass = match g {
                Guard::Ge(a) => a.eval(&look).signum() >= 0,
                Guard::Eq(a) => a.eval(&look).is_zero(),
                Guard::Div(a, k) => {
                    let v = a.eval(&look);
                    debug_assert!(v.is_integer());
                    v.num() % *k == 0
                }
            };
            if !pass {
                return;
            }
        }
        self.pending += 1;
        if let Some(hook) = &mut self.on_instance {
            hook(s, env);
        }
        let value = self.eval(&sd.rhs, &look, m);
        self.eval_subscripts_into(&sd.write.idxs, &look);
        drop(look);
        m.array_mut(sd.write.array).set(&self.scratch, value);
    }

    /// Evaluate subscripts into the reused scratch buffer (no allocation).
    fn eval_subscripts_into(&mut self, idxs: &[Aff], look: &dyn Fn(VarKey) -> Int) {
        self.scratch.clear();
        for a in idxs {
            let v = a
                .eval_int(look)
                .unwrap_or_else(|| panic!("subscript {a:?} not integral"));
            assert!(v >= 0, "negative subscript {v}");
            self.scratch.push(v as usize);
        }
    }

    fn eval(&mut self, e: &Expr, look: &dyn Fn(VarKey) -> Int, m: &Machine) -> f64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Index(a) => {
                let r = a.eval(look);
                r.num() as f64 / r.den() as f64
            }
            Expr::Read(acc) => {
                self.eval_subscripts_into(&acc.idxs, look);
                m.array(acc.array).get(&self.scratch)
            }
            Expr::Neg(x) => -self.eval(x, look, m),
            Expr::Sqrt(x) => self.eval(x, look, m).sqrt(),
            Expr::Add(a, b) => self.eval(a, look, m) + self.eval(b, look, m),
            Expr::Sub(a, b) => self.eval(a, look, m) - self.eval(b, look, m),
            Expr::Mul(a, b) => self.eval(a, look, m) * self.eval(b, look, m),
            Expr::Div(a, b) => self.eval(a, look, m) / self.eval(b, look, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn simple_cholesky_computes() {
        // N = 1: A(1) = sqrt(A(1)); no inner iterations
        let p = zoo::simple_cholesky();
        let mut m = Machine::new(&p, &[1], &|_, _| 16.0);
        Interpreter::new(&p).run(&mut m);
        assert_eq!(m.array_by_name("A").unwrap()[1], 4.0);
        // N = 2: A(1)=sqrt(A(1)); A(2)=A(2)/A(1); A(2)=sqrt(A(2))
        let mut m2 = Machine::new(&p, &[2], &|_, _| 16.0);
        Interpreter::new(&p).run(&mut m2);
        let a = m2.array_by_name("A").unwrap();
        assert_eq!(a[1], 4.0);
        assert_eq!(a[2], 2.0); // sqrt(16/4)
    }

    #[test]
    fn wavefront_values() {
        // A[i][j] = A[i-1][j] + A[i][j-1] over zero boundary except
        // A[0][*] = A[*][0] = 1 gives binomial-like growth
        let p = zoo::wavefront();
        let mut m = Machine::new(&p, &[3], &|_, idx| {
            if idx[0] == 0 || idx[1] == 0 {
                1.0
            } else {
                0.0
            }
        });
        Interpreter::new(&p).run(&mut m);
        let a = m.arrays().iter().find(|a| a.name == "A").unwrap();
        assert_eq!(a.get(&[1, 1]), 2.0);
        assert_eq!(a.get(&[2, 1]), 3.0);
        assert_eq!(a.get(&[2, 2]), 6.0);
        assert_eq!(a.get(&[3, 3]), 20.0);
    }

    #[test]
    fn guards_filter_instances() {
        use inl_ir::{Aff, Expr, ProgramBuilder};
        // do I = 1..N: if (I mod 2 == 0) X(I) = 1
        let mut b = ProgramBuilder::new("guarded");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n) + Aff::konst(1)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt_guarded(
                "S",
                x,
                vec![Aff::var(i)],
                Expr::konst(1.0),
                vec![Guard::Div(Aff::var(i), 2)],
            );
        });
        let p = b.finish();
        let mut m = Machine::new(&p, &[5], &|_, _| 0.0);
        Interpreter::new(&p).run(&mut m);
        let x = m.array_by_name("X").unwrap();
        assert_eq!(x, &[0.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn hook_sees_every_instance() {
        let p = zoo::simple_cholesky();
        let counter = std::cell::Cell::new(0usize);
        let mut interp = Interpreter::new(&p);
        interp.on_instance = Some(Box::new(|_, _| counter.set(counter.get() + 1)));
        let mut m = Machine::new(&p, &[4], &|_, _| 9.0);
        interp.run(&mut m);
        drop(interp);
        // N=4: S1 runs 4 times; S2 runs 3+2+1 = 6 times
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn empty_ranges_execute_nothing() {
        let p = zoo::perfect_nest();
        // N = 1: inner loop J = 2..1 is empty
        let mut m = Machine::new(&p, &[1], &|_, _| 7.0);
        Interpreter::new(&p).run(&mut m);
        assert_eq!(m.array_by_name("A").unwrap(), &[7.0, 7.0]);
    }
}
