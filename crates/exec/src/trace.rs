//! Execution traces: the dynamic-instance sequence of a run.
//!
//! A trace is the list of executed statement instances in order, which is
//! exactly the sequence of dynamic instances of §2 of the paper. Traces let
//! tests check the *order-theoretic* claims directly: Theorem 1 (execution
//! order = lexicographic order on instance vectors) and Theorem 2 (legal
//! transformations preserve dependence order).

use crate::interp::Interpreter;
use crate::machine::Machine;
use inl_ir::{Program, StmtId};
use inl_linalg::Int;

/// One executed statement instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceRecord {
    /// The statement.
    pub stmt: StmtId,
    /// Values of the surrounding loops, outside-in.
    pub iter: Vec<Int>,
}

/// A full execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Executed instances, in execution order.
    pub instances: Vec<InstanceRecord>,
}

impl Trace {
    /// Number of executed instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True iff nothing executed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Count instances of one statement.
    pub fn count_stmt(&self, s: StmtId) -> usize {
        self.instances.iter().filter(|r| r.stmt == s).count()
    }

    /// The multiset of instances (sorted), for comparing coverage between
    /// a program and its transformation (same instances, different order).
    pub fn sorted_multiset(&self, p: &Program) -> Vec<(String, Vec<Int>)> {
        let mut v: Vec<(String, Vec<Int>)> = self
            .instances
            .iter()
            .map(|r| (p.stmt_decl(r.stmt).name.clone(), r.iter.clone()))
            .collect();
        v.sort();
        v
    }
}

/// Run a program, recording the trace alongside the final machine state.
pub fn run_traced(p: &Program, params: &[Int], init: &dyn Fn(&str, &[usize]) -> f64) -> (Machine, Trace) {
    let mut machine = Machine::new(p, params, init);
    let trace = std::cell::RefCell::new(Trace::default());
    {
        let mut interp = Interpreter::new(p);
        interp.on_instance = Some(Box::new(|s, env| {
            let iter: Vec<Int> = p
                .loops_surrounding(s)
                .iter()
                .map(|l| env[l.0].expect("surrounding loop bound"))
                .collect();
            trace.borrow_mut().instances.push(InstanceRecord { stmt: s, iter });
        }));
        interp.run(&mut machine);
    }
    (machine, trace.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn trace_counts_match_loop_bounds() {
        let p = zoo::simple_cholesky();
        let (_, t) = run_traced(&p, &[5], &|_, _| 4.0);
        let stmts: Vec<_> = p.stmts().collect();
        assert_eq!(t.count_stmt(stmts[0]), 5); // S1 per outer iteration
        assert_eq!(t.count_stmt(stmts[1]), 4 + 3 + 2 + 1); // triangular S2
    }

    #[test]
    fn trace_order_is_lexicographic_on_instance_vectors() {
        // Theorem 1, now validated against a real execution
        use inl_core::instance::InstanceLayout;
        let p = zoo::running_example();
        let layout = InstanceLayout::new(&p);
        let (_, t) = run_traced(&p, &[4], &|_, _| 0.0);
        let vectors: Vec<_> = t
            .instances
            .iter()
            .map(|r| layout.instance_vector(r.stmt, &r.iter))
            .collect();
        for w in vectors.windows(2) {
            assert_eq!(
                inl_linalg::lex::lex_cmp(&w[0], &w[1]),
                std::cmp::Ordering::Less,
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn multiset_comparison() {
        let p = zoo::simple_cholesky();
        let (_, t1) = run_traced(&p, &[4], &|_, _| 4.0);
        let (_, t2) = run_traced(&p, &[4], &|_, _| 9.0);
        assert_eq!(t1.sorted_multiset(&p), t2.sorted_multiset(&p));
        assert!(!t1.is_empty());
        assert_eq!(t1.len(), 4 + 6);
    }
}
