//! Execution traces: the dynamic-instance sequence of a run.
//!
//! A trace is the list of executed statement instances in order, which is
//! exactly the sequence of dynamic instances of §2 of the paper. Traces let
//! tests check the *order-theoretic* claims directly: Theorem 1 (execution
//! order = lexicographic order on instance vectors) and Theorem 2 (legal
//! transformations preserve dependence order).

use crate::interp::Interpreter;
use crate::machine::Machine;
use inl_ir::{Program, StmtId};
use inl_linalg::Int;

/// One executed statement instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceRecord {
    /// The statement.
    pub stmt: StmtId,
    /// Values of the surrounding loops, outside-in.
    pub iter: Vec<Int>,
}

/// A full execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Executed instances, in execution order.
    pub instances: Vec<InstanceRecord>,
}

impl Trace {
    /// Number of executed instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True iff nothing executed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Count instances of one statement.
    pub fn count_stmt(&self, s: StmtId) -> usize {
        self.instances.iter().filter(|r| r.stmt == s).count()
    }

    /// Aggregate the trace: per-statement instance counts plus a loop-depth
    /// histogram. This is what the pipeline report surfaces as its `trace`
    /// section.
    pub fn summary(&self, p: &Program) -> TraceSummary {
        let mut per_stmt: Vec<(String, usize)> = Vec::new();
        let mut depth_histogram: Vec<usize> = Vec::new();
        for r in &self.instances {
            let name = &p.stmt_decl(r.stmt).name;
            match per_stmt.iter_mut().find(|(n, _)| n == name) {
                Some((_, c)) => *c += 1,
                None => per_stmt.push((name.clone(), 1)),
            }
            let depth = r.iter.len();
            if depth_histogram.len() <= depth {
                depth_histogram.resize(depth + 1, 0);
            }
            depth_histogram[depth] += 1;
        }
        per_stmt.sort();
        TraceSummary {
            total: self.instances.len(),
            per_stmt,
            depth_histogram,
        }
    }

    /// The multiset of instances (sorted), for comparing coverage between
    /// a program and its transformation (same instances, different order).
    pub fn sorted_multiset(&self, p: &Program) -> Vec<(String, Vec<Int>)> {
        let mut v: Vec<(String, Vec<Int>)> = self
            .instances
            .iter()
            .map(|r| (p.stmt_decl(r.stmt).name.clone(), r.iter.clone()))
            .collect();
        v.sort();
        v
    }
}

/// Aggregated view of a [`Trace`]; see [`Trace::summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total executed instances.
    pub total: usize,
    /// `(statement name, instance count)`, sorted by name.
    pub per_stmt: Vec<(String, usize)>,
    /// `depth_histogram[d]` = instances executed under exactly `d`
    /// surrounding loops.
    pub depth_histogram: Vec<usize>,
}

impl TraceSummary {
    /// Convert to a JSON section for [`inl_obs::PipelineReport::attach`].
    pub fn to_json(&self) -> inl_obs::Json {
        use inl_obs::Json;
        let mut obj = Json::object();
        obj.insert("instances", Json::Int(self.total as u64));
        let mut stmts = Json::object();
        for (name, c) in &self.per_stmt {
            stmts.insert(name.clone(), Json::Int(*c as u64));
        }
        obj.insert("per_stmt", stmts);
        obj.insert(
            "depth_histogram",
            Json::Array(
                self.depth_histogram
                    .iter()
                    .map(|&c| Json::Int(c as u64))
                    .collect(),
            ),
        );
        obj
    }
}

/// Run a program, recording the trace alongside the final machine state.
pub fn run_traced(
    p: &Program,
    params: &[Int],
    init: &dyn Fn(&str, &[usize]) -> f64,
) -> (Machine, Trace) {
    let mut machine = Machine::new(p, params, init);
    let trace = std::cell::RefCell::new(Trace::default());
    {
        let mut interp = Interpreter::new(p);
        interp.on_instance = Some(Box::new(|s, env| {
            let iter: Vec<Int> = p
                .loops_surrounding(s)
                .iter()
                .map(|l| env[l.0].expect("surrounding loop bound"))
                .collect();
            trace
                .borrow_mut()
                .instances
                .push(InstanceRecord { stmt: s, iter });
        }));
        interp.run(&mut machine);
    }
    (machine, trace.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn trace_counts_match_loop_bounds() {
        let p = zoo::simple_cholesky();
        let (_, t) = run_traced(&p, &[5], &|_, _| 4.0);
        let stmts: Vec<_> = p.stmts().collect();
        assert_eq!(t.count_stmt(stmts[0]), 5); // S1 per outer iteration
        assert_eq!(t.count_stmt(stmts[1]), 4 + 3 + 2 + 1); // triangular S2
    }

    #[test]
    fn trace_order_is_lexicographic_on_instance_vectors() {
        // Theorem 1, now validated against a real execution
        use inl_core::instance::InstanceLayout;
        let p = zoo::running_example();
        let layout = InstanceLayout::new(&p);
        let (_, t) = run_traced(&p, &[4], &|_, _| 0.0);
        let vectors: Vec<_> = t
            .instances
            .iter()
            .map(|r| layout.instance_vector(r.stmt, &r.iter))
            .collect();
        for w in vectors.windows(2) {
            assert_eq!(
                inl_linalg::lex::lex_cmp(&w[0], &w[1]),
                std::cmp::Ordering::Less,
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn summary_counts_stmts_and_depths() {
        // simple_cholesky at N=5: S1 runs once per outer iteration (depth
        // 1), S2 triangularly under both loops (depth 2).
        let p = zoo::simple_cholesky();
        let (_, t) = run_traced(&p, &[5], &|_, _| 4.0);
        let s = t.summary(&p);
        assert_eq!(s.total, 15);
        assert_eq!(
            s.per_stmt,
            vec![("S1".to_string(), 5), ("S2".to_string(), 10)]
        );
        assert_eq!(s.depth_histogram, vec![0, 5, 10]);
        let json = s.to_json();
        assert_eq!(
            json.get("instances").and_then(inl_obs::Json::as_u64),
            Some(15)
        );
    }

    #[test]
    fn multiset_comparison() {
        let p = zoo::simple_cholesky();
        let (_, t1) = run_traced(&p, &[4], &|_, _| 4.0);
        let (_, t2) = run_traced(&p, &[4], &|_, _| 9.0);
        assert_eq!(t1.sorted_multiset(&p), t2.sorted_multiset(&p));
        assert!(!t1.is_empty());
        assert_eq!(t1.len(), 4 + 6);
    }
}
