//! # inl-exec
//!
//! Execution of `inl-ir` programs: a reference interpreter, execution
//! traces, equivalence checking, and a parallel executor for loops the
//! framework has proven dependence-free.
//!
//! The interpreter is the framework's ground truth: a *legal* loop
//! transformation preserves, per memory location, the order of every write
//! and of every read relative to the writes around it — so original and
//! transformed programs must produce **bitwise identical** array states,
//! even in floating point. The test-suites across this workspace lean on
//! that: run both programs, compare bits.
//!
//! ```
//! use inl_exec::{Interpreter, Machine};
//! use inl_ir::zoo;
//!
//! let p = zoo::simple_cholesky();
//! // N = 4; A starts as a diagonally dominant vector
//! let mut m = Machine::new(&p, &[4], &|_, idx| 2.0 + idx[0] as f64);
//! Interpreter::new(&p).run(&mut m);
//! assert!(m.array_by_name("A").unwrap()[1] > 0.0);
//! ```

pub mod backend;
pub mod interp;
pub mod machine;
pub mod par;
pub mod trace;

pub use backend::{run_fresh_with, Backend, VmRunner};
pub use interp::Interpreter;
pub use machine::{ArrayData, Machine};
pub use par::ParallelExecutor;
pub use trace::{run_traced, InstanceRecord, Trace, TraceSummary};

/// Run a program to completion on a fresh machine and return the machine.
pub fn run_fresh(
    p: &inl_ir::Program,
    params: &[inl_linalg::Int],
    init: &dyn Fn(&str, &[usize]) -> f64,
) -> Machine {
    let mut m = Machine::new(p, params, init);
    Interpreter::new(p).run(&mut m);
    m
}

/// Check that two programs (e.g. source and transformed) produce bitwise
/// identical final array states from the same initial machine. Arrays are
/// matched by name. Returns a description of the first difference.
pub fn equivalent(
    a: &inl_ir::Program,
    b: &inl_ir::Program,
    params: &[inl_linalg::Int],
    init: &dyn Fn(&str, &[usize]) -> f64,
) -> Result<(), String> {
    let ma = run_fresh(a, params, init);
    let mb = run_fresh(b, params, init);
    ma.same_state(&mb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn cholesky_forms_agree() {
        // right-looking KIJ and hand-written left-looking Cholesky compute
        // bitwise identical factors
        let init = |_: &str, idx: &[usize]| {
            // symmetric positive definite-ish: strong diagonal
            if idx[0] == idx[1] {
                (idx[0] + 10) as f64
            } else {
                1.0 / ((idx[0] + idx[1] + 1) as f64)
            }
        };
        equivalent(
            &zoo::cholesky_kij(),
            &zoo::cholesky_left_looking(),
            &[6],
            &init,
        )
        .expect("factors agree");
    }

    #[test]
    fn distributed_cholesky_differs() {
        // the §4.2 distribution is illegal for Cholesky: the distributed
        // program must NOT be equivalent (pivots are applied in a
        // different order relative to the updates)
        let init = |_: &str, idx: &[usize]| 2.0 + idx[0] as f64;
        let r = equivalent(
            &zoo::simple_cholesky(),
            &zoo::distributed_simple_cholesky(),
            &[5],
            &init,
        );
        assert!(
            r.is_err(),
            "illegal distribution changed semantics, must differ"
        );
    }
}
