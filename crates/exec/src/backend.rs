//! Backend selection: the tree-walking [`Interpreter`] vs the compiling
//! bytecode VM (`inl-vm`).
//!
//! Both backends are bitwise-identical on legal programs — the VM performs
//! the same `f64` operations in the same order — so callers pick purely on
//! speed/debuggability grounds: the interpreter is the readable ground
//! truth, the VM is the fast path for benchmarking real problem sizes.
//!
//! The glue lives here rather than in `inl-vm` because the VM executes a
//! *flat* `f64` buffer and knows nothing of [`Machine`]; [`VmRunner`]
//! copies the machine's arrays into a flat buffer (same `ArrayId` order
//! both sides use), runs the bytecode, and copies the results back.

use crate::interp::Interpreter;
use crate::machine::Machine;
use inl_ir::Program;
use inl_vm::{BoundProgram, CompiledProgram};

/// Which execution engine to run a program on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The reference tree-walking interpreter.
    #[default]
    Interp,
    /// The compiling bytecode VM.
    Vm,
}

impl Backend {
    /// Read the backend from the `INL_BACKEND` environment variable
    /// (`"vm"` selects the VM; anything else, or unset, the interpreter).
    pub fn from_env() -> Backend {
        match std::env::var("INL_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("vm") => Backend::Vm,
            _ => Backend::Interp,
        }
    }

    /// Execute `p` on `m` with this backend. The VM path compiles on every
    /// call — to amortize compilation over many runs, hold a [`VmRunner`].
    ///
    /// ```
    /// use inl_exec::{Backend, Machine};
    ///
    /// let p = inl_ir::zoo::simple_cholesky();
    /// let mut a = Machine::new(&p, &[2], &|_, _| 16.0);
    /// let mut b = Machine::new(&p, &[2], &|_, _| 16.0);
    /// Backend::Interp.run(&p, &mut a);
    /// Backend::Vm.run(&p, &mut b);
    /// // Both backends are bitwise identical.
    /// assert_eq!(a.arrays()[0].data, b.arrays()[0].data);
    /// ```
    pub fn run(self, p: &Program, m: &mut Machine) {
        match self {
            Backend::Interp => Interpreter::new(p).run(m),
            Backend::Vm => VmRunner::new(p).run(m),
        }
    }
}

/// A program compiled once for the VM backend, runnable many times (the
/// `compile once, execute per parameter binding` shape the benches use).
pub struct VmRunner {
    compiled: CompiledProgram,
}

impl VmRunner {
    /// Compile `p` to bytecode (under the `vm.compile` obs span).
    pub fn new(p: &Program) -> Self {
        VmRunner {
            compiled: inl_vm::compile(p),
        }
    }

    /// The underlying bytecode (for disassembly or direct driving).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Execute on a machine: bind the machine's parameters, copy arrays
    /// into the VM's flat buffer, run, copy back.
    pub fn run(&self, m: &mut Machine) {
        let _span = inl_obs::span("exec.vm");
        let bp = self.compiled.bind(m.params());
        let mut buf = copy_in(&bp, m);
        inl_vm::run(&bp, &mut buf);
        copy_out(&bp, &buf, m);
    }
}

/// Flatten the machine's arrays into one VM buffer (both sides lay arrays
/// out row-major in `ArrayId` order, so this is a straight concatenation).
pub(crate) fn copy_in(bp: &BoundProgram<'_>, m: &Machine) -> Vec<f64> {
    let mut buf = vec![0.0; bp.total_len];
    for (layout, arr) in bp.arrays.iter().zip(m.arrays()) {
        assert_eq!(layout.name, arr.name, "array order mismatch");
        assert_eq!(layout.dims, arr.dims, "array shape mismatch");
        buf[layout.base..layout.base + layout.len].copy_from_slice(&arr.data);
    }
    buf
}

/// Copy the VM buffer back into the machine's arrays.
pub(crate) fn copy_out(bp: &BoundProgram<'_>, buf: &[f64], m: &mut Machine) {
    for (layout, arr) in bp.arrays.iter().zip(m.arrays_mut()) {
        arr.data
            .copy_from_slice(&buf[layout.base..layout.base + layout.len]);
    }
}

/// Run a program to completion on a fresh machine with the chosen backend.
pub fn run_fresh_with(
    backend: Backend,
    p: &Program,
    params: &[inl_linalg::Int],
    init: &dyn Fn(&str, &[usize]) -> f64,
) -> Machine {
    let mut m = Machine::new(p, params, init);
    backend.run(p, &mut m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    fn spdish(_: &str, idx: &[usize]) -> f64 {
        if idx.len() == 2 && idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx.iter().sum::<usize>() + 1) as f64)
        }
    }

    #[test]
    fn vm_matches_interpreter_on_every_zoo_program() {
        for (p, params) in [
            (zoo::simple_cholesky(), vec![7]),
            (zoo::running_example(), vec![6]),
            (zoo::perfect_nest(), vec![6]),
            (zoo::augmentation_example(), vec![6]),
            (zoo::cholesky_kij(), vec![8]),
            (zoo::cholesky_left_looking(), vec![8]),
            (zoo::lu_kij(), vec![8]),
            (zoo::matmul(), vec![6]),
            (zoo::wavefront(), vec![8]),
            (zoo::rect_wavefront(), vec![5, 9]),
            (zoo::row_prefix_sums(), vec![7]),
            (zoo::distributed_simple_cholesky(), vec![7]),
            (zoo::independent_pair(), vec![6]),
        ] {
            let a = run_fresh_with(Backend::Interp, &p, &params, &spdish);
            let b = run_fresh_with(Backend::Vm, &p, &params, &spdish);
            a.same_state(&b)
                .unwrap_or_else(|e| panic!("{}: VM differs: {e}", p.name()));
        }
    }

    #[test]
    fn vm_runner_amortizes_compilation() {
        let p = zoo::cholesky_kij();
        let runner = VmRunner::new(&p);
        for n in [2, 5, 9] {
            let mut vm = Machine::new(&p, &[n], &spdish);
            runner.run(&mut vm);
            let interp = run_fresh_with(Backend::Interp, &p, &[n], &spdish);
            interp.same_state(&vm).expect("bitwise identical");
        }
    }

    #[test]
    fn backend_default_is_interpreter() {
        assert_eq!(Backend::default(), Backend::Interp);
    }
}
