//! Machine state: parameter bindings and dense array storage.

use inl_ir::{ArrayId, Program, VarKey};
use inl_linalg::Int;

/// A dense row-major multi-dimensional `f64` array.
#[derive(Clone, Debug)]
pub struct ArrayData {
    /// Name (copied from the declaration, used to match arrays across
    /// programs whose ids differ).
    pub name: String,
    /// Extent of each dimension.
    pub dims: Vec<usize>,
    /// Row-major storage, length `Π dims`.
    pub data: Vec<f64>,
}

impl ArrayData {
    /// Flatten a multi-index.
    ///
    /// # Panics
    /// If out of bounds or of wrong arity.
    #[inline]
    pub fn flat(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(
            idx.len(),
            self.dims.len(),
            "array {}: arity mismatch",
            self.name
        );
        let mut f = 0usize;
        for (d, (&i, &ext)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(
                i < ext,
                "array {}: index {i} out of bounds {ext} in dimension {d}",
                self.name
            );
            f = f * ext + i;
        }
        f
    }

    /// Read an element.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.flat(idx)]
    }

    /// Write an element.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let f = self.flat(idx);
        self.data[f] = v;
    }
}

/// Machine state for one program execution.
#[derive(Clone, Debug)]
pub struct Machine {
    params: Vec<Int>,
    arrays: Vec<ArrayData>,
}

impl Machine {
    /// Allocate arrays for `p` with parameters bound to `params`
    /// (positional by `ParamId`), each cell initialized by
    /// `init(array_name, multi_index)`.
    ///
    /// # Panics
    /// If a parameter is missing or an extent is non-positive.
    pub fn new(p: &Program, params: &[Int], init: &dyn Fn(&str, &[usize]) -> f64) -> Self {
        assert_eq!(params.len(), p.nparams(), "parameter arity mismatch");
        let lookup = |v: VarKey| -> Int {
            match v {
                VarKey::Param(pr) => params[pr.0],
                VarKey::Loop(_) => panic!("array extent references a loop variable"),
            }
        };
        let arrays = p
            .arrays()
            .map(|a| {
                let decl = p.array_decl(a);
                let dims: Vec<usize> = decl
                    .dims
                    .iter()
                    .map(|e| {
                        let ext = e.eval_int(&lookup).expect("array extent not integral");
                        assert!(ext > 0, "array {} has non-positive extent {ext}", decl.name);
                        ext as usize
                    })
                    .collect();
                let total: usize = dims.iter().product();
                let mut data = vec![0.0; total];
                // initialize cell by cell (row-major enumeration)
                let mut idx = vec![0usize; dims.len()];
                for cell in data.iter_mut() {
                    *cell = init(&decl.name, &idx);
                    for d in (0..dims.len()).rev() {
                        idx[d] += 1;
                        if idx[d] < dims[d] {
                            break;
                        }
                        idx[d] = 0;
                    }
                }
                ArrayData {
                    name: decl.name.clone(),
                    dims,
                    data,
                }
            })
            .collect();
        Machine {
            params: params.to_vec(),
            arrays,
        }
    }

    /// The bound parameters.
    pub fn params(&self) -> &[Int] {
        &self.params
    }

    /// Array storage by id.
    pub fn array(&self, a: ArrayId) -> &ArrayData {
        &self.arrays[a.0]
    }

    /// Mutable array storage by id.
    pub fn array_mut(&mut self, a: ArrayId) -> &mut ArrayData {
        &mut self.arrays[a.0]
    }

    /// All arrays.
    pub fn arrays(&self) -> &[ArrayData] {
        &self.arrays
    }

    /// Mutable access to all arrays.
    pub fn arrays_mut(&mut self) -> &mut [ArrayData] {
        &mut self.arrays
    }

    /// Flat data of an array found by name.
    pub fn array_by_name(&self, name: &str) -> Option<&[f64]> {
        self.arrays
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.data.as_slice())
    }

    /// Compare final states with another machine, matching arrays by name
    /// and comparing **bitwise** (a legal transformation cannot change even
    /// floating-point results). Returns the first difference found.
    pub fn same_state(&self, other: &Machine) -> Result<(), String> {
        for a in &self.arrays {
            let Some(b) = other.arrays.iter().find(|b| b.name == a.name) else {
                return Err(format!("array {} missing in other machine", a.name));
            };
            if a.dims != b.dims {
                return Err(format!(
                    "array {}: shape {:?} vs {:?}",
                    a.name, a.dims, b.dims
                ));
            }
            for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(format!("array {}: cell {i} differs: {x} vs {y}", a.name));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn allocation_and_init() {
        let p = zoo::simple_cholesky();
        let m = Machine::new(&p, &[4], &|_, idx| idx[0] as f64);
        let a = m.array_by_name("A").unwrap();
        assert_eq!(a.len(), 5); // N + 1
        assert_eq!(a[3], 3.0);
    }

    #[test]
    fn multidim_layout() {
        let p = zoo::wavefront();
        let m = Machine::new(&p, &[3], &|_, idx| (10 * idx[0] + idx[1]) as f64);
        let a = m.arrays().iter().find(|a| a.name == "A").unwrap();
        assert_eq!(a.dims, vec![4, 4]);
        assert_eq!(a.get(&[2, 3]), 23.0);
        assert_eq!(a.flat(&[1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let p = zoo::wavefront();
        let m = Machine::new(&p, &[3], &|_, _| 0.0);
        let a = m.arrays().first().unwrap();
        let _ = a.get(&[4, 0]);
    }

    #[test]
    fn same_state_detects_differences() {
        let p = zoo::simple_cholesky();
        let m1 = Machine::new(&p, &[4], &|_, idx| idx[0] as f64);
        let mut m2 = m1.clone();
        assert!(m1.same_state(&m2).is_ok());
        m2.arrays_mut()[0].data[2] += 1.0;
        assert!(m1.same_state(&m2).is_err());
    }
}
