//! Parallel execution of loops the framework has proven dependence-free.
//!
//! Loops marked `parallel` in the IR (set by the user or by
//! `inl-core::parallel` analysis results) execute their iterations across
//! worker threads; everything else runs sequentially in AST order.
//!
//! # Safety contract
//!
//! The executor trusts the `parallel` flags: distinct iterations of a
//! parallel loop must not write the same array cell, and no iteration may
//! read a cell another writes. That is precisely what the dependence
//! framework certifies (a loop slot with no carried dependence —
//! [`inl_core`-level `parallel_slots`]); executing a loop wrongly marked
//! parallel is a data race. Array storage is shared across threads through
//! raw pointers for exactly this reason.

use crate::backend::{copy_in, copy_out};
use crate::machine::Machine;
use inl_ir::{Aff, ArrayId, Expr, Guard, LoopId, Node, Program, VarKey};
use inl_linalg::Int;
use inl_vm::bytecode::BoundProgram;
use inl_vm::{exec_range, SharedBuf, VmState};

/// Per-worker execution context: a reused subscript scratch buffer and the
/// batched `exec.instances` tally (flushed per loop completion, and once
/// more when the worker finishes).
#[derive(Default)]
struct ExecCtx {
    scratch: Vec<usize>,
    pending: u64,
}

impl ExecCtx {
    #[inline]
    fn flush(&mut self) {
        if self.pending > 0 {
            inl_obs::counter_add!("exec.instances", self.pending);
        }
        self.pending = 0;
    }
}

/// Raw shared view of the machine's arrays.
struct RawArray {
    ptr: *mut f64,
    dims: Vec<usize>,
    name: String,
}

struct RawStorage<'a> {
    arrays: Vec<RawArray>,
    params: &'a [Int],
}

// Shared across worker threads under the module's safety contract.
unsafe impl Send for RawStorage<'_> {}
unsafe impl Sync for RawStorage<'_> {}

impl RawStorage<'_> {
    #[inline]
    fn flat(&self, a: ArrayId, idx: &[usize]) -> usize {
        let arr = &self.arrays[a.0];
        let mut f = 0usize;
        for (d, (&i, &ext)) in idx.iter().zip(&arr.dims).enumerate() {
            assert!(
                i < ext,
                "array {}: index {i} out of bounds {ext} in dim {d}",
                arr.name
            );
            f = f * ext + i;
        }
        f
    }

    #[inline]
    fn read(&self, a: ArrayId, idx: &[usize]) -> f64 {
        let f = self.flat(a, idx);
        unsafe { *self.arrays[a.0].ptr.add(f) }
    }

    #[inline]
    fn write(&self, a: ArrayId, idx: &[usize], v: f64) {
        let f = self.flat(a, idx);
        unsafe { *self.arrays[a.0].ptr.add(f) = v }
    }
}

/// Executes a program, running `parallel`-marked loops across threads.
pub struct ParallelExecutor<'p> {
    program: &'p Program,
    nthreads: usize,
}

impl<'p> ParallelExecutor<'p> {
    /// Create an executor with the given worker count (`0` = available
    /// parallelism).
    pub fn new(program: &'p Program, nthreads: usize) -> Self {
        let nthreads = if nthreads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            nthreads
        };
        ParallelExecutor { program, nthreads }
    }

    /// Execute on the machine.
    pub fn run(&self, m: &mut Machine) {
        let _span = inl_obs::span("exec.parallel");
        let params = m.params().to_vec();
        let storage = RawStorage {
            arrays: m
                .arrays_mut()
                .iter_mut()
                .map(|a| RawArray {
                    ptr: a.data.as_mut_ptr(),
                    dims: a.dims.clone(),
                    name: a.name.clone(),
                })
                .collect(),
            params: &params,
        };
        let mut env: Vec<Option<Int>> = vec![None; self.program.loops().count()];
        let mut ctx = ExecCtx::default();
        exec_nodes(
            self.program,
            self.program.root(),
            &mut env,
            &storage,
            self.nthreads,
            &mut ctx,
        );
        ctx.flush();
    }

    /// Execute on the machine through the bytecode VM: compile once, copy
    /// the arrays into the VM's flat buffer, then run wavefronts by
    /// dispatching parallel-loop *body* ranges across workers over shared
    /// storage. Sequential subtrees with no parallel loop below them run
    /// as straight bytecode.
    pub fn run_vm(&self, m: &mut Machine) {
        let _span = inl_obs::span("exec.parallel");
        let compiled = inl_vm::compile(self.program);
        let bp = compiled.bind(m.params());
        let mut flat = copy_in(&bp, m);
        let buf = SharedBuf::new(&mut flat);
        let mut st = bp.new_state();
        vm_nodes(
            self.program,
            &bp,
            self.program.root(),
            &mut st,
            &buf,
            self.nthreads,
        );
        copy_out(&bp, &flat, m);
    }
}

/// Explain-record one wavefront dispatch of a `parallel`-marked loop
/// (stage `exec`): the wavefront width, worker count, and chunking.
fn record_wavefront(name: &str, width: usize, nthreads: usize, chunk: usize, backend: &str) {
    if !inl_obs::explain_enabled() {
        return;
    }
    inl_obs::explain::note(
        "exec",
        format!("loop {name}"),
        format!(
            "dispatched a {width}-iteration wavefront across {nthreads} worker(s), \
             chunk size {chunk} ({backend} backend)"
        ),
    )
    .feature("wavefront_width", width as i64)
    .feature("threads", nthreads as i64)
    .feature("chunk", chunk as i64);
}

/// True iff the subtree rooted at `l` contains a parallel loop.
fn subtree_has_parallel(p: &Program, l: LoopId) -> bool {
    let ld = p.loop_decl(l);
    ld.parallel
        || ld.children.iter().any(|&n| match n {
            Node::Loop(inner) => subtree_has_parallel(p, inner),
            Node::Stmt(_) => false,
        })
}

fn vm_nodes(
    p: &Program,
    bp: &BoundProgram<'_>,
    nodes: &[Node],
    st: &mut VmState,
    buf: &SharedBuf<'_>,
    nthreads: usize,
) {
    for &n in nodes {
        match n {
            Node::Loop(l) => vm_loop(p, bp, l, st, buf, nthreads),
            Node::Stmt(s) => {
                let (start, end) = bp.cp.stmt_range(s).expect("detached stmt");
                exec_range(bp, st, buf, start, end);
            }
        }
    }
}

fn vm_loop(
    p: &Program,
    bp: &BoundProgram<'_>,
    l: LoopId,
    st: &mut VmState,
    buf: &SharedBuf<'_>,
    nthreads: usize,
) {
    let meta = *bp.cp.loop_meta(l).expect("detached loop");
    // No parallelism below: hand the whole loop (header, body, latch) to
    // the VM's dispatch loop.
    if nthreads <= 1 || !subtree_has_parallel(p, l) {
        exec_range(bp, st, buf, meta.header, meta.exit);
        return;
    }
    let ld = p.loop_decl(l);
    let (lo, hi) = bp.loop_bounds(l, &st.iregs);
    if lo > hi {
        return;
    }
    let iters: Vec<i64> = {
        let mut v = Vec::new();
        let mut i = lo;
        while i <= hi {
            v.push(i);
            i += meta.step;
        }
        v
    };
    if ld.parallel && iters.len() > 1 {
        inl_obs::counter_add!("exec.par.wavefronts", 1);
        let _wf = inl_obs::timeline::scope_args(
            "exec.par.wavefront",
            &[("iters", iters.len() as i64), ("threads", nthreads as i64)],
        );
        let chunk = iters.len().div_ceil(nthreads);
        record_wavefront(&ld.name, iters.len(), nthreads, chunk, "vm");
        std::thread::scope(|scope| {
            for ch in iters.chunks(chunk) {
                let mut thread_st = st.clone();
                scope.spawn(move || {
                    let _slice = inl_obs::timeline::scope_args(
                        "exec.par.chunk",
                        &[("lo", ch[0]), ("hi", *ch.last().unwrap())],
                    );
                    let busy = std::time::Instant::now();
                    for &i in ch {
                        thread_st.iregs[meta.var as usize] = i;
                        // inner parallel loops run sequentially inside a
                        // worker, i.e. as plain bytecode
                        vm_nodes(p, bp, &ld.children, &mut thread_st, buf, 1);
                    }
                    inl_obs::counter_add!(
                        "exec.par.thread_busy_ns",
                        busy.elapsed().as_nanos() as u64
                    );
                });
            }
        });
    } else {
        for &i in &iters {
            st.iregs[meta.var as usize] = i;
            vm_nodes(p, bp, &ld.children, st, buf, nthreads);
        }
    }
}

fn lookup<'e>(env: &'e [Option<Int>], params: &'e [Int]) -> impl Fn(VarKey) -> Int + 'e {
    move |v: VarKey| match v {
        VarKey::Param(p) => params[p.0],
        VarKey::Loop(l) => env[l.0].expect("loop variable read outside its loop"),
    }
}

fn exec_nodes(
    p: &Program,
    nodes: &[Node],
    env: &mut Vec<Option<Int>>,
    st: &RawStorage<'_>,
    nthreads: usize,
    ctx: &mut ExecCtx,
) {
    for &n in nodes {
        match n {
            Node::Loop(l) => exec_loop(p, l, env, st, nthreads, ctx),
            Node::Stmt(s) => exec_stmt(p, s, env, st, ctx),
        }
    }
}

fn exec_loop(
    p: &Program,
    l: LoopId,
    env: &mut Vec<Option<Int>>,
    st: &RawStorage<'_>,
    nthreads: usize,
    ctx: &mut ExecCtx,
) {
    let ld = p.loop_decl(l);
    let (lo, hi) = {
        let look = lookup(env, st.params);
        (ld.lower.eval_lower(&look), ld.upper.eval_upper(&look))
    };
    if lo > hi {
        return;
    }
    let iters: Vec<Int> = {
        let mut v = Vec::new();
        let mut i = lo;
        while i <= hi {
            v.push(i);
            i += ld.step;
        }
        v
    };
    if ld.parallel && nthreads > 1 && iters.len() > 1 {
        inl_obs::counter_add!("exec.par.wavefronts", 1);
        let _wf = inl_obs::timeline::scope_args(
            "exec.par.wavefront",
            &[("iters", iters.len() as i64), ("threads", nthreads as i64)],
        );
        let chunk = iters.len().div_ceil(nthreads);
        record_wavefront(&ld.name, iters.len(), nthreads, chunk, "tree");
        std::thread::scope(|scope| {
            for ch in iters.chunks(chunk) {
                let mut thread_env = env.clone();
                scope.spawn(move || {
                    let _slice = inl_obs::timeline::scope_args(
                        "exec.par.chunk",
                        &[("lo", ch[0] as i64), ("hi", *ch.last().unwrap() as i64)],
                    );
                    let busy = std::time::Instant::now();
                    let mut thread_ctx = ExecCtx::default();
                    for &i in ch {
                        thread_env[l.0] = Some(i);
                        // inner parallel loops run sequentially inside a
                        // worker (one level of parallelism is enough here)
                        exec_nodes(p, &ld.children, &mut thread_env, st, 1, &mut thread_ctx);
                    }
                    thread_ctx.flush();
                    inl_obs::counter_add!(
                        "exec.par.thread_busy_ns",
                        busy.elapsed().as_nanos() as u64
                    );
                });
            }
        });
    } else {
        for &i in &iters {
            env[l.0] = Some(i);
            exec_nodes(p, &ld.children, env, st, nthreads, ctx);
        }
    }
    env[l.0] = None;
    // per-loop-completion counter flush (see ExecCtx)
    ctx.flush();
}

fn exec_stmt(
    p: &Program,
    s: inl_ir::StmtId,
    env: &[Option<Int>],
    st: &RawStorage<'_>,
    ctx: &mut ExecCtx,
) {
    let sd = p.stmt_decl(s);
    // one lookup closure per statement instance, shared by guards, rhs,
    // and write subscripts
    let look = lookup(env, st.params);
    for g in &sd.guards {
        let pass = match g {
            Guard::Ge(a) => a.eval(&look).signum() >= 0,
            Guard::Eq(a) => a.eval(&look).is_zero(),
            Guard::Div(a, k) => {
                let v = a.eval(&look);
                v.is_integer() && v.num() % *k == 0
            }
        };
        if !pass {
            return;
        }
    }
    ctx.pending += 1;
    let value = eval(p, &sd.rhs, &look, st, ctx);
    eval_subscripts_into(&sd.write.idxs, &look, &mut ctx.scratch);
    st.write(sd.write.array, &ctx.scratch, value);
}

/// Evaluate subscripts into a reused scratch buffer (no allocation).
fn eval_subscripts_into(idxs: &[Aff], look: &dyn Fn(VarKey) -> Int, scratch: &mut Vec<usize>) {
    scratch.clear();
    for a in idxs {
        let v = a
            .eval_int(look)
            .unwrap_or_else(|| panic!("subscript {a:?} not integral"));
        assert!(v >= 0, "negative subscript {v}");
        scratch.push(v as usize);
    }
}

#[allow(clippy::only_used_in_recursion)] // keep the program in scope for future expression forms
fn eval(
    p: &Program,
    e: &Expr,
    look: &dyn Fn(VarKey) -> Int,
    st: &RawStorage<'_>,
    ctx: &mut ExecCtx,
) -> f64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Index(a) => {
            let r = a.eval(look);
            r.num() as f64 / r.den() as f64
        }
        Expr::Read(acc) => {
            eval_subscripts_into(&acc.idxs, look, &mut ctx.scratch);
            st.read(acc.array, &ctx.scratch)
        }
        Expr::Neg(x) => -eval(p, x, look, st, ctx),
        Expr::Sqrt(x) => eval(p, x, look, st, ctx).sqrt(),
        Expr::Add(a, b) => eval(p, a, look, st, ctx) + eval(p, b, look, st, ctx),
        Expr::Sub(a, b) => eval(p, a, look, st, ctx) - eval(p, b, look, st, ctx),
        Expr::Mul(a, b) => eval(p, a, look, st, ctx) * eval(p, b, look, st, ctx),
        Expr::Div(a, b) => eval(p, a, look, st, ctx) / eval(p, b, look, st, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use inl_ir::{zoo, Bound, ProgramBuilder};

    /// A dependence-free doubly nested initialization, marked parallel.
    fn parallel_init_program() -> Program {
        let mut b = ProgramBuilder::new("parinit");
        let n = b.param("N");
        let ext = Aff::param(n) + Aff::konst(1);
        let a = b.array("A", &[ext.clone(), ext.clone()]);
        b.loop_full(
            "I",
            Bound::single(Aff::konst(1)),
            Bound::single(Aff::param(n)),
            1,
            true, // parallel
            |b| {
                let i = b.loop_var("I");
                b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
                    let j = b.loop_var("J");
                    b.stmt(
                        "S",
                        a,
                        vec![Aff::var(i), Aff::var(j)],
                        Expr::index(Aff::var(i) * 100 + Aff::var(j)),
                    );
                });
            },
        );
        b.finish()
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = parallel_init_program();
        let mut seq = Machine::new(&p, &[17], &|_, _| -1.0);
        Interpreter::new(&p).run(&mut seq);
        for threads in [1, 2, 4, 8] {
            let mut par = Machine::new(&p, &[17], &|_, _| -1.0);
            ParallelExecutor::new(&p, threads).run(&mut par);
            seq.same_state(&par)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn sequential_fallback_when_not_marked() {
        // wavefront is NOT parallel; executor must run it sequentially and
        // agree with the interpreter
        let p = zoo::wavefront();
        let init = |_: &str, idx: &[usize]| {
            if idx[0] == 0 || idx[1] == 0 {
                1.0
            } else {
                0.0
            }
        };
        let mut seq = Machine::new(&p, &[8], &init);
        Interpreter::new(&p).run(&mut seq);
        let mut par = Machine::new(&p, &[8], &init);
        ParallelExecutor::new(&p, 4).run(&mut par);
        seq.same_state(&par).expect("identical");
    }

    #[test]
    fn vm_path_matches_interpreter() {
        let p = parallel_init_program();
        let mut seq = Machine::new(&p, &[17], &|_, _| -1.0);
        Interpreter::new(&p).run(&mut seq);
        for threads in [1, 2, 4] {
            let mut par = Machine::new(&p, &[17], &|_, _| -1.0);
            ParallelExecutor::new(&p, threads).run_vm(&mut par);
            seq.same_state(&par)
                .unwrap_or_else(|e| panic!("vm, {threads} threads: {e}"));
        }
    }

    #[test]
    fn vm_path_sequential_fallback() {
        // wavefront is NOT parallel: the VM path must run it as straight
        // bytecode and agree bitwise
        let p = zoo::wavefront();
        let init = |_: &str, idx: &[usize]| {
            if idx[0] == 0 || idx[1] == 0 {
                1.0
            } else {
                0.0
            }
        };
        let mut seq = Machine::new(&p, &[8], &init);
        Interpreter::new(&p).run(&mut seq);
        let mut par = Machine::new(&p, &[8], &init);
        ParallelExecutor::new(&p, 4).run_vm(&mut par);
        seq.same_state(&par).expect("identical");
    }

    #[test]
    fn zero_threads_means_auto() {
        let p = parallel_init_program();
        let mut m = Machine::new(&p, &[5], &|_, _| 0.0);
        ParallelExecutor::new(&p, 0).run(&mut m);
        let a = m.arrays().iter().find(|a| a.name == "A").unwrap();
        assert_eq!(a.get(&[3, 4]), 304.0);
    }
}
