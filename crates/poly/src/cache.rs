//! Process-wide memoization of the expensive polyhedral queries.
//!
//! Fourier–Motzkin projection, integer feasibility, and variable-bounds
//! queries ([`crate::fm`]) dominate the pipeline's compile-side time, and
//! the same sub-systems recur constantly: every statement pair in
//! dependence analysis shares bound constraints, every legality check
//! re-tests prefixes of the same dependence polyhedron, and a variant
//! sweep re-analyzes one source program twelve times. This module caches
//! query answers keyed by the *canonical form* of the constraint system
//! ([`crate::System::canonicalized`]) plus the query, so systems built
//! along different paths still share work.
//!
//! Correctness by construction: canonicalization runs unconditionally
//! inside the public `fm` entry points — with the cache on or off, every
//! query is answered as a deterministic function of the canonical system,
//! so disabling the cache (`INL_POLY_CACHE=0` or
//! [`set_cache_enabled`]`(false)`) changes speed, never answers.
//!
//! The cache is a bounded map: when it reaches [`CACHE_CAP`] entries it is
//! cleared in one deterministic generation flush (no LRU order to depend
//! on timing), and the flushed entry count is reported as evictions.
//! Telemetry: `poly.cache.hit` / `poly.cache.miss` /
//! `poly.cache.insertions` / `poly.cache.evictions` counters via
//! [`inl_obs`], plus always-on local [`CacheStats`] for callers that want
//! hit rates without enabling observability.

use crate::fm::Feasibility;
use crate::System;
use inl_linalg::{InlError, Int};
use inl_obs::counter_add;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Entry cap: one deterministic full flush ("generation" eviction) when
/// reached. Generous enough that real pipelines never flush; the bound
/// exists so pathological sweeps cannot grow without limit.
pub const CACHE_CAP: usize = 32_768;

/// A memoizable query against a canonicalized [`System`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Query {
    /// [`crate::fm::project`] onto these kept variables (sorted, deduped).
    Project(Vec<usize>),
    /// [`crate::fm::is_empty`] integer feasibility.
    Feasibility,
    /// [`crate::fm::var_bounds`] for one variable.
    VarBounds(usize),
}

/// The memoized answer for a [`Query`]. Fallible queries cache the whole
/// `Result`: an overflow or budget error is a deterministic function of
/// the canonical system, so re-asking must re-fail identically (and
/// cheaply).
#[derive(Clone)]
pub(crate) enum Answer {
    Project(Result<(System, bool), InlError>),
    Feasibility(Feasibility),
    VarBounds(Result<(Option<Int>, Option<Int>), InlError>),
}

/// Monotonic counters describing cache behaviour since process start (or
/// the last [`reset_stats`]). Tracked unconditionally — independent of
/// `inl-obs` enablement — so benchmark drivers can compute hit rates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute (cache enabled but entry absent).
    pub misses: u64,
    /// Entries written into the map.
    pub insertions: u64,
    /// Entries dropped by generation flushes at [`CACHE_CAP`].
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of all cache-enabled queries (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Render as a JSON object — the shape shared by the report binary's
    /// `poly_cache` section and `inl-serve`'s `stats` response, so both
    /// views of the process-wide cache stay comparable.
    pub fn to_json(&self) -> inl_obs::Json {
        let mut o = inl_obs::Json::object();
        o.insert("enabled", inl_obs::Json::Bool(cache_enabled()));
        o.insert("hits", inl_obs::Json::Int(self.hits));
        o.insert("misses", inl_obs::Json::Int(self.misses));
        o.insert("insertions", inl_obs::Json::Int(self.insertions));
        o.insert("evictions", inl_obs::Json::Int(self.evictions));
        o.insert("entries", inl_obs::Json::Int(self.entries));
        o.insert("hit_rate", inl_obs::Json::Float(self.hit_rate()));
        o
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static INSERTIONS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// 0 = uninitialized (read `INL_POLY_CACHE` on first use), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn map() -> &'static Mutex<HashMap<(System, Query), Answer>> {
    static MAP: OnceLock<Mutex<HashMap<(System, Query), Answer>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True iff memoization is active. Defaults to on; `INL_POLY_CACHE` set to
/// `0`, `false`, or `off` disables it (canonicalization still runs, so
/// answers are unaffected either way).
pub fn cache_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var("INL_POLY_CACHE")
                .map(|v| matches!(v.as_str(), "0" | "false" | "off"))
                .unwrap_or(false);
            ENABLED.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Programmatically enable or disable memoization, overriding
/// `INL_POLY_CACHE`. Used by the benchmark driver and the differential
/// tests to compare cached and uncached runs in one process.
pub fn set_cache_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drop every cached entry (stats are kept; see [`reset_stats`]).
pub fn clear() {
    map().lock().unwrap().clear();
}

/// Zero the [`CacheStats`] counters (the map itself is kept).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    INSERTIONS.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
}

/// Snapshot the cache counters as JSON (see [`CacheStats::to_json`]).
pub fn stats_json() -> inl_obs::Json {
    stats().to_json()
}

/// Snapshot the cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        insertions: INSERTIONS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries: map().lock().unwrap().len() as u64,
    }
}

/// Insert with the generation-flush bound: when the map is full, clear it
/// wholesale (deterministic, no recency ordering) and count the dropped
/// entries as evictions. Returns the number of evicted entries.
fn insert_bounded(
    map: &mut HashMap<(System, Query), Answer>,
    key: (System, Query),
    answer: Answer,
    cap: usize,
) -> usize {
    let mut evicted = 0;
    if map.len() >= cap {
        evicted = map.len();
        map.clear();
    }
    map.insert(key, answer);
    evicted
}

/// Answer `query` about the already-canonicalized system `canon`, consulting
/// the memo cache when enabled. `compute` must be a pure function of its
/// argument; it runs outside the cache lock, so two threads racing on the
/// same cold key may both compute (both count as misses, last write wins —
/// harmless because answers are equal).
pub(crate) fn memo<F>(canon: System, query: Query, compute: F) -> Answer
where
    F: FnOnce(&System) -> Answer,
{
    if !cache_enabled() {
        return compute(&canon);
    }
    let key = (canon, query);
    if let Some(hit) = map().lock().unwrap().get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        counter_add!("poly.cache.hit", 1);
        return hit.clone();
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    counter_add!("poly.cache.miss", 1);
    let answer = compute(&key.0);
    let evicted = insert_bounded(&mut map().lock().unwrap(), key, answer.clone(), CACHE_CAP);
    INSERTIONS.fetch_add(1, Ordering::Relaxed);
    counter_add!("poly.cache.insertions", 1);
    if evicted > 0 {
        EVICTIONS.fetch_add(evicted as u64, Ordering::Relaxed);
        counter_add!("poly.cache.evictions", evicted as u64);
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_empty, var_bounds, LinExpr};
    use std::sync::Mutex;

    /// Cache state is process-global; tests that toggle or measure it must
    /// not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn interval(lo: Int, hi: Int) -> System {
        let mut s = System::new(1);
        s.add_ge(LinExpr::var(1, 0) - LinExpr::constant(1, lo));
        s.add_ge(LinExpr::constant(1, hi) - LinExpr::var(1, 0));
        s
    }

    #[test]
    fn repeat_query_hits() {
        let _g = TEST_LOCK.lock().unwrap();
        set_cache_enabled(true);
        clear();
        reset_stats();
        let s = interval(3, 17);
        assert_eq!(var_bounds(&s, 0), Ok((Some(3), Some(17))));
        let before = stats();
        assert_eq!(var_bounds(&s, 0), Ok((Some(3), Some(17))));
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn differently_built_systems_share_entries() {
        let _g = TEST_LOCK.lock().unwrap();
        set_cache_enabled(true);
        clear();
        reset_stats();
        // Same constraint set, different insertion order and a redundant row.
        let mut a = System::new(1);
        a.add_ge(LinExpr::var(1, 0) - LinExpr::constant(1, 2));
        a.add_ge(LinExpr::constant(1, 9) - LinExpr::var(1, 0));
        let mut b = System::new(1);
        b.add_ge(LinExpr::constant(1, 9) - LinExpr::var(1, 0));
        b.add_ge(LinExpr::var(1, 0) - LinExpr::constant(1, 2));
        b.add_ge(LinExpr::var(1, 0)); // dominated by x >= 2
        assert_eq!(is_empty(&a), is_empty(&b));
        let s = stats();
        assert_eq!(s.hits, 1, "second system must reuse the first's entry");
    }

    #[test]
    fn disabled_cache_neither_hits_nor_inserts() {
        let _g = TEST_LOCK.lock().unwrap();
        set_cache_enabled(false);
        clear();
        reset_stats();
        let s = interval(0, 5);
        let uncached = var_bounds(&s, 0);
        let again = var_bounds(&s, 0);
        assert_eq!(uncached, again);
        let st = stats();
        assert_eq!((st.hits, st.misses, st.insertions), (0, 0, 0));
        set_cache_enabled(true);
    }

    #[test]
    fn stats_json_snapshot_has_the_report_shape() {
        let _g = TEST_LOCK.lock().unwrap();
        set_cache_enabled(true);
        clear();
        reset_stats();
        let s = interval(0, 9);
        let _ = var_bounds(&s, 0); // miss + insert
        let _ = var_bounds(&s, 0); // hit
        let j = stats_json();
        assert_eq!(j.get("enabled"), Some(&inl_obs::Json::Bool(true)));
        // Counters are process-global and sibling tests also query the
        // cache, so assert monotone facts, not exact counts: the cold call
        // must miss, the identical warm call must hit.
        let hits = j.get("hits").and_then(inl_obs::Json::as_u64).unwrap();
        let misses = j.get("misses").and_then(inl_obs::Json::as_u64).unwrap();
        assert!(hits >= 1, "warm call must hit");
        assert!(misses >= 1, "cold call must miss");
        let rate = match j.get("hit_rate") {
            Some(inl_obs::Json::Float(f)) => *f,
            other => panic!("hit_rate should be a float, got {other:?}"),
        };
        assert!(rate > 0.0 && rate <= 1.0, "rate {rate}");
        // Every key the report binary's poly_cache section publishes.
        for key in ["insertions", "evictions", "entries"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn generation_flush_counts_evictions() {
        let mut m = HashMap::new();
        let mk = |c: Int| (interval(0, c).canonicalized(), Query::Feasibility);
        for i in 0..3 {
            assert_eq!(
                insert_bounded(&mut m, mk(i), Answer::Feasibility(Feasibility::NonEmpty), 3),
                0
            );
        }
        assert_eq!(m.len(), 3);
        // Fourth insert hits the cap: whole generation flushed, then inserted.
        assert_eq!(
            insert_bounded(&mut m, mk(3), Answer::Feasibility(Feasibility::NonEmpty), 3),
            3
        );
        assert_eq!(m.len(), 1);
    }
}
