//! Linear expressions over indexed variables.

use inl_linalg::{gcd, IVec, InlError, Int};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression `Σ coeffs[i]·xᵢ + constant` over a fixed number of
/// variables. The variable space is positional; callers decide what each
/// index means (loop variables, symbolic parameters, Δ variables, …).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    coeffs: Vec<Int>,
    constant: Int,
}

impl LinExpr {
    /// The zero expression over `n` variables.
    pub fn zero(n: usize) -> Self {
        LinExpr {
            coeffs: vec![0; n],
            constant: 0,
        }
    }

    /// The constant expression `c` over `n` variables.
    pub fn constant(n: usize, c: Int) -> Self {
        LinExpr {
            coeffs: vec![0; n],
            constant: c,
        }
    }

    /// The single variable `xᵢ` over `n` variables.
    pub fn var(n: usize, i: usize) -> Self {
        let mut coeffs = vec![0; n];
        coeffs[i] = 1;
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Build from raw parts.
    pub fn from_parts(coeffs: Vec<Int>, constant: Int) -> Self {
        LinExpr { coeffs, constant }
    }

    /// Number of variables in the space.
    pub fn nvars(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `i`.
    #[inline]
    pub fn coeff(&self, i: usize) -> Int {
        self.coeffs[i]
    }

    /// Set the coefficient of variable `i`.
    pub fn set_coeff(&mut self, i: usize, c: Int) {
        self.coeffs[i] = c;
    }

    /// The constant term.
    #[inline]
    pub fn constant_term(&self) -> Int {
        self.constant
    }

    /// Set the constant term.
    pub fn set_constant(&mut self, c: Int) {
        self.constant = c;
    }

    /// The coefficient vector.
    pub fn coeffs(&self) -> &[Int] {
        &self.coeffs
    }

    /// True iff all coefficients are zero (a pure constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// True iff identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.is_constant()
    }

    /// Indices of variables with non-zero coefficients.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, _)| i)
    }

    /// Gcd of all coefficients (not the constant); 0 if constant.
    pub fn coeff_content(&self) -> Int {
        self.coeffs.iter().fold(0, |acc, &c| gcd(acc, c))
    }

    /// Evaluate at a point (must supply all variables); convenience wrapper
    /// over [`LinExpr::checked_eval`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`LinExpr::checked_eval`].
    pub fn eval(&self, point: &[Int]) -> Int {
        self.checked_eval(point)
            .expect("eval overflow: fallible paths use checked_eval")
    }

    /// Overflow-checked evaluation at a point.
    ///
    /// # Panics
    /// If `point` does not supply all variables (an arity mismatch is a
    /// programming error, not an input condition).
    pub fn checked_eval(&self, point: &[Int]) -> Result<Int, InlError> {
        assert_eq!(point.len(), self.coeffs.len(), "eval: wrong arity");
        let mut acc = self.constant;
        for (&c, &x) in self.coeffs.iter().zip(point) {
            acc = c
                .checked_mul(x)
                .and_then(|t| acc.checked_add(t))
                .ok_or_else(|| InlError::overflow("linear expression evaluation"))?;
        }
        Ok(acc)
    }

    /// Substitute variable `i` with expression `e`; convenience wrapper
    /// over [`LinExpr::checked_substitute`] for trusted inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`LinExpr::checked_substitute`].
    pub fn substitute(&self, i: usize, e: &LinExpr) -> LinExpr {
        self.checked_substitute(i, e)
            .expect("substitute overflow: fallible paths use checked_substitute")
    }

    /// Overflow-checked substitution of variable `i` with expression `e`
    /// (which must live in the same variable space and have zero
    /// coefficient on `i` itself).
    ///
    /// # Panics
    /// On arity mismatch or a self-referential replacement (programming
    /// errors, not input conditions).
    pub fn checked_substitute(&self, i: usize, e: &LinExpr) -> Result<LinExpr, InlError> {
        assert_eq!(self.nvars(), e.nvars(), "substitute: arity mismatch");
        assert_eq!(
            e.coeff(i),
            0,
            "substitute: replacement mentions the variable"
        );
        let c = self.coeffs[i];
        if c == 0 {
            return Ok(self.clone());
        }
        let err = || InlError::overflow("substitution");
        let mut out = self.clone();
        out.coeffs[i] = 0;
        for j in 0..out.coeffs.len() {
            out.coeffs[j] = c
                .checked_mul(e.coeffs[j])
                .and_then(|t| out.coeffs[j].checked_add(t))
                .ok_or_else(err)?;
        }
        out.constant = c
            .checked_mul(e.constant)
            .and_then(|t| out.constant.checked_add(t))
            .ok_or_else(err)?;
        Ok(out)
    }

    /// Overflow-checked addition.
    pub fn checked_add(&self, rhs: &LinExpr) -> Result<LinExpr, InlError> {
        assert_eq!(self.nvars(), rhs.nvars(), "add: arity mismatch");
        let err = || InlError::overflow("linear expression addition");
        Ok(LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| a.checked_add(b).ok_or_else(err))
                .collect::<Result<_, _>>()?,
            constant: self.constant.checked_add(rhs.constant).ok_or_else(err)?,
        })
    }

    /// Overflow-checked subtraction.
    pub fn checked_sub(&self, rhs: &LinExpr) -> Result<LinExpr, InlError> {
        assert_eq!(self.nvars(), rhs.nvars(), "sub: arity mismatch");
        let err = || InlError::overflow("linear expression subtraction");
        Ok(LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| a.checked_sub(b).ok_or_else(err))
                .collect::<Result<_, _>>()?,
            constant: self.constant.checked_sub(rhs.constant).ok_or_else(err)?,
        })
    }

    /// Overflow-checked negation.
    pub fn checked_neg(&self) -> Result<LinExpr, InlError> {
        let err = || InlError::overflow("linear expression negation");
        Ok(LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| a.checked_neg().ok_or_else(err))
                .collect::<Result<_, _>>()?,
            constant: self.constant.checked_neg().ok_or_else(err)?,
        })
    }

    /// Overflow-checked scaling by a constant.
    pub fn checked_scale(&self, k: Int) -> Result<LinExpr, InlError> {
        let err = || InlError::overflow("linear expression scaling");
        Ok(LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| a.checked_mul(k).ok_or_else(err))
                .collect::<Result<_, _>>()?,
            constant: self.constant.checked_mul(k).ok_or_else(err)?,
        })
    }

    /// Extend the variable space to `n` variables (new variables have
    /// coefficient 0). `n` must be ≥ the current arity.
    pub fn extend(&self, n: usize) -> LinExpr {
        assert!(n >= self.nvars());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(n, 0);
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Remove variable `i` from the space (its coefficient must be zero),
    /// shifting later variables down.
    pub fn drop_var(&self, i: usize) -> LinExpr {
        assert_eq!(self.coeffs[i], 0, "drop_var: coefficient not zero");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(i);
        LinExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Re-index into a smaller space: keep only variables in `keep` (in that
    /// order). All other variables must have zero coefficients.
    pub fn project_onto(&self, keep: &[usize]) -> LinExpr {
        let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
        for (i, &c) in self.coeffs.iter().enumerate() {
            assert!(
                c == 0 || keep_set.contains(&i),
                "project_onto: dropping variable {i} with nonzero coefficient"
            );
        }
        LinExpr {
            coeffs: keep.iter().map(|&i| self.coeffs[i]).collect(),
            constant: self.constant,
        }
    }

    /// The coefficients as an [`IVec`] (without the constant).
    pub fn coeff_vec(&self) -> IVec {
        IVec::from(self.coeffs.as_slice())
    }

    /// Render with variable names supplied by `name`.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(usize) -> String) -> LinExprDisplay<'a> {
        LinExprDisplay { expr: self, name }
    }
}

/// Helper for [`LinExpr::display_with`].
pub struct LinExprDisplay<'a> {
    expr: &'a LinExpr,
    name: &'a dyn Fn(usize) -> String,
}

impl fmt::Display for LinExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.expr.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let n = (self.name)(i);
            if first {
                match c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    _ => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {n}")?;
                } else {
                    write!(f, " + {c}*{n}")?;
                }
            } else if c == -1 {
                write!(f, " - {n}")?;
            } else {
                write!(f, " - {}*{n}", -c)?;
            }
        }
        let k = self.expr.constant;
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&name))
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        self.checked_add(&rhs)
            .expect("add overflow: fallible paths use checked_add")
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self.checked_sub(&rhs)
            .expect("sub overflow: fallible paths use checked_sub")
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.checked_neg()
            .expect("neg overflow: fallible paths use checked_neg")
    }
}

impl Mul<Int> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: Int) -> LinExpr {
        self.checked_scale(k)
            .expect("mul overflow: fallible paths use checked_scale")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let n = 3;
        let e = LinExpr::var(n, 0) * 2 - LinExpr::var(n, 2) + LinExpr::constant(n, 5);
        assert_eq!(e.coeff(0), 2);
        assert_eq!(e.coeff(1), 0);
        assert_eq!(e.coeff(2), -1);
        assert_eq!(e.constant_term(), 5);
        assert_eq!(e.eval(&[10, 99, 3]), 22);
        assert!(!e.is_constant());
        assert!(LinExpr::constant(2, 7).is_constant());
        assert!(LinExpr::zero(2).is_zero());
    }

    #[test]
    fn substitute_var() {
        // x0 + 2*x1, substitute x1 := x2 - 1  =>  x0 + 2*x2 - 2
        let n = 3;
        let e = LinExpr::var(n, 0) + LinExpr::var(n, 1) * 2;
        let r = LinExpr::var(n, 2) - LinExpr::constant(n, 1);
        let s = e.substitute(1, &r);
        assert_eq!(s.coeff(0), 1);
        assert_eq!(s.coeff(1), 0);
        assert_eq!(s.coeff(2), 2);
        assert_eq!(s.constant_term(), -2);
    }

    #[test]
    fn project_and_extend() {
        let n = 4;
        let e = LinExpr::var(n, 1) + LinExpr::var(n, 3) * 3;
        let p = e.project_onto(&[1, 3]);
        assert_eq!(p.nvars(), 2);
        assert_eq!(p.coeff(0), 1);
        assert_eq!(p.coeff(1), 3);
        let x = p.extend(5);
        assert_eq!(x.nvars(), 5);
        assert_eq!(x.coeff(1), 3);
    }

    #[test]
    #[should_panic(expected = "nonzero coefficient")]
    fn project_drops_used_var() {
        let e = LinExpr::var(3, 2);
        let _ = e.project_onto(&[0, 1]);
    }

    #[test]
    fn display() {
        let n = 3;
        let name = |i: usize| ["N", "i", "j"][i].to_string();
        let e = LinExpr::var(n, 1) * 2 - LinExpr::var(n, 2) - LinExpr::constant(n, 3);
        assert_eq!(format!("{}", e.display_with(&name)), "2*i - j - 3");
        assert_eq!(format!("{}", LinExpr::zero(n).display_with(&name)), "0");
        let f = -LinExpr::var(n, 0) + LinExpr::constant(n, 1);
        assert_eq!(format!("{}", f.display_with(&name)), "-N + 1");
    }

    #[test]
    fn content() {
        let n = 2;
        let e = LinExpr::var(n, 0) * 4 + LinExpr::var(n, 1) * 6 + LinExpr::constant(n, 3);
        assert_eq!(e.coeff_content(), 2);
        assert_eq!(LinExpr::constant(n, 5).coeff_content(), 0);
    }
}
