//! Conjunctions of affine constraints.

use crate::LinExpr;
use inl_linalg::{floor_div, InlError, Int};
use std::fmt;

/// A conjunction of affine constraints over a fixed variable space:
/// each equality `e = 0` and each inequality `e ≥ 0`.
///
/// The system is kept *normalized*: inequalities are divided by the gcd of
/// their coefficients with the constant floored (integer tightening — sound
/// because solutions are integral), equalities whose gcd does not divide the
/// constant mark the system as trivially infeasible.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct System {
    nvars: usize,
    eqs: Vec<LinExpr>,
    ineqs: Vec<LinExpr>,
    /// Set when a constraint reduced to `false` (e.g. `-1 ≥ 0`).
    trivially_empty: bool,
}

impl System {
    /// The unconstrained system over `n` variables.
    pub fn new(n: usize) -> Self {
        System {
            nvars: n,
            eqs: Vec::new(),
            ineqs: Vec::new(),
            trivially_empty: false,
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The equalities (`e = 0`).
    pub fn eqs(&self) -> &[LinExpr] {
        &self.eqs
    }

    /// The inequalities (`e ≥ 0`).
    pub fn ineqs(&self) -> &[LinExpr] {
        &self.ineqs
    }

    /// True iff a constraint already reduced to `false`.
    pub fn is_trivially_empty(&self) -> bool {
        self.trivially_empty
    }

    /// Add the equality `e = 0`.
    pub fn add_eq(&mut self, e: LinExpr) {
        assert_eq!(e.nvars(), self.nvars, "add_eq: arity mismatch");
        let g = e.coeff_content();
        if g == 0 {
            if e.constant_term() != 0 {
                self.trivially_empty = true;
            }
            return;
        }
        if e.constant_term() % g != 0 {
            // gcd test: no integer solution
            self.trivially_empty = true;
            return;
        }
        let norm = LinExpr::from_parts(
            e.coeffs().iter().map(|&c| c / g).collect(),
            e.constant_term() / g,
        );
        if !self.eqs.contains(&norm) {
            self.eqs.push(norm);
        }
    }

    /// Add the inequality `e ≥ 0`, with integer tightening.
    pub fn add_ge(&mut self, e: LinExpr) {
        assert_eq!(e.nvars(), self.nvars, "add_ge: arity mismatch");
        let g = e.coeff_content();
        if g == 0 {
            if e.constant_term() < 0 {
                self.trivially_empty = true;
            }
            return;
        }
        // Σ(aᵢ/g)xᵢ ≥ ceil(-c/g)  ⇔  Σ(aᵢ/g)xᵢ + floor(c/g) ≥ 0
        let norm = LinExpr::from_parts(
            e.coeffs().iter().map(|&c| c / g).collect(),
            floor_div(e.constant_term(), g),
        );
        if !self.ineqs.contains(&norm) {
            self.ineqs.push(norm);
        }
    }

    /// Add `a ≤ b`, i.e. `b - a ≥ 0`.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`System::checked_add_le`].
    pub fn add_le(&mut self, a: LinExpr, b: LinExpr) {
        self.add_ge(b - a);
    }

    /// Overflow-checked [`System::add_le`].
    pub fn checked_add_le(&mut self, a: &LinExpr, b: &LinExpr) -> Result<(), InlError> {
        self.add_ge(b.checked_sub(a)?);
        Ok(())
    }

    /// Add `a < b` over the integers, i.e. `b - a - 1 ≥ 0`.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`System::checked_add_lt`].
    pub fn add_lt(&mut self, a: LinExpr, b: LinExpr) {
        let n = self.nvars;
        self.add_ge(b - a - LinExpr::constant(n, 1));
    }

    /// Overflow-checked [`System::add_lt`].
    pub fn checked_add_lt(&mut self, a: &LinExpr, b: &LinExpr) -> Result<(), InlError> {
        let n = self.nvars;
        self.add_ge(b.checked_sub(a)?.checked_sub(&LinExpr::constant(n, 1))?);
        Ok(())
    }

    /// Conjoin all constraints of `other` (same variable space).
    pub fn conjoin(&mut self, other: &System) {
        assert_eq!(self.nvars, other.nvars, "conjoin: arity mismatch");
        self.trivially_empty |= other.trivially_empty;
        for e in &other.eqs {
            self.add_eq(e.clone());
        }
        for e in &other.ineqs {
            self.add_ge(e.clone());
        }
    }

    /// Extend the variable space to `n ≥ nvars` variables.
    pub fn extend(&self, n: usize) -> System {
        System {
            nvars: n,
            eqs: self.eqs.iter().map(|e| e.extend(n)).collect(),
            ineqs: self.ineqs.iter().map(|e| e.extend(n)).collect(),
            trivially_empty: self.trivially_empty,
        }
    }

    /// Substitute variable `i` with expression `r` everywhere; convenience
    /// wrapper over [`System::checked_substitute`] for trusted inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`System::checked_substitute`].
    pub fn substitute(&self, i: usize, r: &LinExpr) -> System {
        self.checked_substitute(i, r)
            .expect("substitute overflow: fallible paths use checked_substitute")
    }

    /// Overflow-checked substitution of variable `i` with expression `r`
    /// everywhere.
    pub fn checked_substitute(&self, i: usize, r: &LinExpr) -> Result<System, InlError> {
        let mut out = System::new(self.nvars);
        out.trivially_empty = self.trivially_empty;
        for e in &self.eqs {
            out.add_eq(e.checked_substitute(i, r)?);
        }
        for e in &self.ineqs {
            out.add_ge(e.checked_substitute(i, r)?);
        }
        Ok(out)
    }

    /// True iff the integer point satisfies every constraint; convenience
    /// wrapper over [`System::checked_contains`] for trusted inputs.
    ///
    /// # Panics
    /// On evaluation overflow; fallible paths use
    /// [`System::checked_contains`].
    pub fn contains(&self, point: &[Int]) -> bool {
        self.checked_contains(point)
            .expect("contains overflow: fallible paths use checked_contains")
    }

    /// Overflow-checked point membership test.
    pub fn checked_contains(&self, point: &[Int]) -> Result<bool, InlError> {
        if self.trivially_empty {
            return Ok(false);
        }
        for e in &self.eqs {
            if e.checked_eval(point)? != 0 {
                return Ok(false);
            }
        }
        for e in &self.ineqs {
            if e.checked_eval(point)? < 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// All constraints as inequalities (each equality contributing two),
    /// for use by elimination; convenience wrapper over
    /// [`System::checked_to_ineqs`] for trusted inputs.
    ///
    /// # Panics
    /// On negation overflow; fallible paths use
    /// [`System::checked_to_ineqs`].
    pub fn to_ineqs(&self) -> Vec<LinExpr> {
        self.checked_to_ineqs()
            .expect("to_ineqs overflow: fallible paths use checked_to_ineqs")
    }

    /// Overflow-checked conversion to an all-inequality representation
    /// (negating each equality can overflow on an `Int::MIN` coefficient).
    pub fn checked_to_ineqs(&self) -> Result<Vec<LinExpr>, InlError> {
        let mut out = self.ineqs.clone();
        for e in &self.eqs {
            out.push(e.clone());
            out.push(e.checked_neg()?);
        }
        Ok(out)
    }

    /// Rebuild from inequalities only.
    pub fn from_ineqs(nvars: usize, ineqs: Vec<LinExpr>) -> System {
        let mut s = System::new(nvars);
        for e in ineqs {
            s.add_ge(e);
        }
        s
    }

    /// Remove inequalities implied by another single inequality
    /// (same coefficients, weaker constant). Cheap syntactic pruning that
    /// keeps Fourier–Motzkin from exploding.
    pub fn prune_dominated(&mut self) {
        let mut keep: Vec<LinExpr> = Vec::with_capacity(self.ineqs.len());
        'outer: for e in std::mem::take(&mut self.ineqs) {
            for k in keep.iter_mut() {
                if k.coeffs() == e.coeffs() {
                    // same hyperplane direction: keep the tighter one
                    if e.constant_term() < k.constant_term() {
                        *k = e.clone();
                    }
                    continue 'outer;
                }
            }
            keep.push(e);
        }
        self.ineqs = keep;
    }

    /// The canonical form of this system: the same solution set, with a
    /// representation that depends only on the *set* of constraints, not
    /// on the order or redundancy with which they were added.
    ///
    /// * Equalities are sign-normalized (the first nonzero coefficient is
    ///   made positive — sound because `e = 0 ⇔ -e = 0`), sorted, and
    ///   deduplicated.
    /// * Inequalities are pruned of same-direction dominated rows
    ///   ([`System::prune_dominated`]), sorted, and deduplicated.
    /// * A trivially empty system canonicalizes to the bare empty system
    ///   (no rows, flag set) regardless of what it accumulated.
    ///
    /// This is the hashable key used by the query cache in [`crate::cache`]
    /// and the preprocessing step of every cached query, so two systems
    /// built along different paths share cached answers. The function is
    /// idempotent.
    pub fn canonicalized(&self) -> System {
        if self.trivially_empty {
            let mut s = System::new(self.nvars);
            s.trivially_empty = true;
            return s;
        }
        let row_cmp = |a: &LinExpr, b: &LinExpr| {
            a.coeffs()
                .cmp(b.coeffs())
                .then(a.constant_term().cmp(&b.constant_term()))
        };
        let mut eqs: Vec<LinExpr> = self
            .eqs
            .iter()
            .map(|e| match e.coeffs().iter().find(|&&c| c != 0) {
                // An `Int::MIN` coefficient cannot be negated; keeping the
                // row unnormalized is sound (e = 0 ⇔ -e = 0 — it only costs
                // cache sharing for that pathological key).
                Some(&c) if c < 0 => e.checked_neg().unwrap_or_else(|_| e.clone()),
                _ => e.clone(),
            })
            .collect();
        eqs.sort_by(row_cmp);
        eqs.dedup();
        let mut out = System {
            nvars: self.nvars,
            eqs,
            ineqs: self.ineqs.clone(),
            trivially_empty: false,
        };
        out.prune_dominated();
        out.ineqs.sort_by(row_cmp);
        out.ineqs.dedup();
        out
    }

    /// Project onto the kept variables — convenience wrapper around
    /// [`crate::fm::project`] (Fourier–Motzkin with integer tightening).
    /// Returns the projection and whether it is exact over the integers.
    ///
    /// ```
    /// use inl_poly::{LinExpr, System};
    ///
    /// // 1 <= x <= 5 && y = x + 2, projected onto y alone
    /// let mut s = System::new(2);
    /// s.add_ge(LinExpr::var(2, 0) - LinExpr::constant(2, 1));
    /// s.add_ge(LinExpr::constant(2, 5) - LinExpr::var(2, 0));
    /// s.add_eq(LinExpr::var(2, 1) - LinExpr::var(2, 0) - LinExpr::constant(2, 2));
    /// let (proj, exact) = s.project(&[1]).unwrap();
    /// assert!(exact);
    /// assert!(proj.contains(&[0, 3]) && proj.contains(&[0, 7]));
    /// assert!(!proj.contains(&[0, 2]) && !proj.contains(&[0, 8]));
    /// ```
    pub fn project(&self, keep: &[usize]) -> Result<(System, bool), InlError> {
        crate::fm::project(self, keep)
    }

    /// Render with variable names supplied by `name`.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(usize) -> String) -> SystemDisplay<'a> {
        SystemDisplay { sys: self, name }
    }
}

/// Helper for [`System::display_with`].
pub struct SystemDisplay<'a> {
    sys: &'a System,
    name: &'a dyn Fn(usize) -> String,
}

impl fmt::Display for SystemDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sys.trivially_empty {
            return write!(f, "false");
        }
        let mut first = true;
        for e in &self.sys.eqs {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "{} = 0", e.display_with(self.name))?;
            first = false;
        }
        for e in &self.sys.ineqs {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "{} >= 0", e.display_with(self.name))?;
            first = false;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, i: usize) -> LinExpr {
        LinExpr::var(n, i)
    }
    fn k(n: usize, c: Int) -> LinExpr {
        LinExpr::constant(n, c)
    }

    #[test]
    fn tightening_on_add() {
        let mut s = System::new(1);
        // 2x - 1 >= 0 tightens to x - 1 >= 0 over the integers
        s.add_ge(v(1, 0) * 2 - k(1, 1));
        assert_eq!(s.ineqs().len(), 1);
        assert_eq!(s.ineqs()[0].coeff(0), 1);
        assert_eq!(s.ineqs()[0].constant_term(), -1);
        assert!(s.contains(&[1]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    fn gcd_test_on_equality() {
        let mut s = System::new(1);
        // 2x = 1 has no integer solution
        s.add_eq(v(1, 0) * 2 - k(1, 1));
        assert!(s.is_trivially_empty());
    }

    #[test]
    fn constant_constraints() {
        let mut s = System::new(1);
        s.add_ge(k(1, 3)); // 3 >= 0, dropped
        assert!(s.ineqs().is_empty());
        s.add_ge(k(1, -1)); // -1 >= 0: false
        assert!(s.is_trivially_empty());
        let mut t = System::new(1);
        t.add_eq(k(1, 0)); // fine
        assert!(!t.is_trivially_empty());
        t.add_eq(k(1, 2)); // 2 = 0: false
        assert!(t.is_trivially_empty());
    }

    #[test]
    fn contains_point() {
        // 1 <= x <= 3 && y = x + 1
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(k(n, 3) - v(n, 0));
        s.add_eq(v(n, 1) - v(n, 0) - k(n, 1));
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[2, 2]));
        assert!(!s.contains(&[4, 5]));
    }

    #[test]
    fn dedup_and_dominance() {
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(v(n, 0) - k(n, 1)); // duplicate
        assert_eq!(s.ineqs().len(), 1);
        s.add_ge(v(n, 0) - k(n, 3)); // tighter
        s.prune_dominated();
        assert_eq!(s.ineqs().len(), 1);
        assert_eq!(s.ineqs()[0].constant_term(), -3);
    }

    #[test]
    fn lt_le_helpers() {
        let n = 2;
        let mut s = System::new(n);
        s.add_lt(v(n, 0), v(n, 1)); // x < y
        assert!(s.contains(&[1, 2]));
        assert!(!s.contains(&[2, 2]));
        let mut t = System::new(n);
        t.add_le(v(n, 0), v(n, 1));
        assert!(t.contains(&[2, 2]));
    }

    #[test]
    fn substitute_system() {
        // 1 <= x <= N with x := y + 1 becomes 0 <= y <= N - 1
        let n = 3; // x, N, y
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(v(n, 1) - v(n, 0));
        let r = v(n, 2) + k(n, 1);
        let t = s.substitute(0, &r);
        assert!(t.contains(&[999, 5, 0])); // x ignored now
        assert!(t.contains(&[999, 5, 4]));
        assert!(!t.contains(&[999, 5, 5]));
        assert!(!t.contains(&[999, 5, -1]));
    }
}
