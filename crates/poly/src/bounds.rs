//! Loop-bound extraction for code generation (§5.5 of the paper).
//!
//! Given a polyhedron describing the transformed iteration space of a
//! statement and an ordering of the loop variables (outside-in), produce for
//! each loop variable a set of lower bounds (`max` of ceiling-divided affine
//! forms in outer variables) and upper bounds (`min` of floor-divided
//! forms), in the manner of Ancourt & Irigoin's polyhedron scanning.

use crate::{fm, LinExpr, System};
use inl_linalg::{InlError, Int};

/// One bound term: the affine expression `expr` (over the full variable
/// space, but only mentioning variables legal at this loop level) divided by
/// `div ≥ 1`. A lower bound means `x ≥ ceil(expr / div)`; an upper bound
/// means `x ≤ floor(expr / div)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundTerm {
    /// Affine expression in outer loop variables and parameters.
    pub expr: LinExpr,
    /// Positive divisor (1 for ordinary bounds).
    pub div: Int,
}

/// Bounds of one loop variable: `max(lowers) ≤ x ≤ min(uppers)`.
#[derive(Clone, Debug, Default)]
pub struct VarBounds {
    /// Lower bound terms (`x ≥ ceil(expr/div)`); empty means unbounded below.
    pub lowers: Vec<BoundTerm>,
    /// Upper bound terms (`x ≤ floor(expr/div)`); empty means unbounded above.
    pub uppers: Vec<BoundTerm>,
}

impl VarBounds {
    /// Evaluate the lower bound at a point (entries for outer vars/params
    /// must be filled in; the rest are ignored by construction).
    /// `None` if unbounded below.
    ///
    /// # Panics
    /// On evaluation overflow; fallible paths use
    /// [`VarBounds::checked_eval_lower`].
    pub fn eval_lower(&self, point: &[Int]) -> Option<Int> {
        self.checked_eval_lower(point)
            .expect("bound eval overflow: fallible paths use checked_eval_lower")
    }

    /// Overflow-checked lower-bound evaluation; `Ok(None)` if unbounded
    /// below.
    pub fn checked_eval_lower(&self, point: &[Int]) -> Result<Option<Int>, InlError> {
        let mut best: Option<Int> = None;
        for b in &self.lowers {
            let v = inl_linalg::ceil_div(b.expr.checked_eval(point)?, b.div);
            best = Some(best.map_or(v, |x| x.max(v)));
        }
        Ok(best)
    }

    /// Evaluate the upper bound at a point. `None` if unbounded above.
    ///
    /// # Panics
    /// On evaluation overflow; fallible paths use
    /// [`VarBounds::checked_eval_upper`].
    pub fn eval_upper(&self, point: &[Int]) -> Option<Int> {
        self.checked_eval_upper(point)
            .expect("bound eval overflow: fallible paths use checked_eval_upper")
    }

    /// Overflow-checked upper-bound evaluation; `Ok(None)` if unbounded
    /// above.
    pub fn checked_eval_upper(&self, point: &[Int]) -> Result<Option<Int>, InlError> {
        let mut best: Option<Int> = None;
        for b in &self.uppers {
            let v = inl_linalg::floor_div(b.expr.checked_eval(point)?, b.div);
            best = Some(best.map_or(v, |x| x.min(v)));
        }
        Ok(best)
    }
}

/// Compute scanning bounds for the loop variables `order` (outside-in) over
/// the polyhedron `sys`. Any variable of the system not listed in `order`
/// is treated as a symbolic parameter, allowed to appear in every bound.
///
/// Returns one [`VarBounds`] per entry of `order`. The bounds of
/// `order[k]` mention only parameters and `order[..k]`.
///
/// The computation runs Fourier–Motzkin from the innermost variable
/// outwards: the innermost variable's bounds are read off the original
/// system, then it is eliminated, and so on. Elimination can only *add*
/// redundant iterations at outer levels (the real shadow is a superset), so
/// statements still need their membership guards unless the elimination was
/// exact — which it is for the unimodular transforms that dominate in
/// practice.
pub fn scan_bounds(sys: &System, order: &[usize]) -> Result<Vec<VarBounds>, InlError> {
    let mut cur = sys.clone();
    let mut out: Vec<VarBounds> = vec![VarBounds::default(); order.len()];
    for k in (0..order.len()).rev() {
        let var = order[k];
        let inner: std::collections::HashSet<usize> = order[k + 1..].iter().copied().collect();
        let mut vb = VarBounds::default();
        for e in cur.checked_to_ineqs()? {
            let a = e.coeff(var);
            if a == 0 {
                continue;
            }
            debug_assert!(
                e.support().all(|v| v == var || !inner.contains(&v)),
                "constraint on {var} mentions an inner variable"
            );
            // a·x + rest ≥ 0
            let mut rest = e.clone();
            rest.set_coeff(var, 0);
            if a > 0 {
                // x ≥ ceil(-rest / a)
                vb.lowers.push(BoundTerm {
                    expr: rest.checked_neg()?,
                    div: a,
                });
            } else {
                // x ≤ floor(rest / -a)
                vb.uppers.push(BoundTerm {
                    expr: rest,
                    div: a
                        .checked_neg()
                        .ok_or_else(|| InlError::overflow("bound divisor"))?,
                });
            }
        }
        dedup_terms(&mut vb.lowers);
        dedup_terms(&mut vb.uppers);
        out[k] = vb;
        let (next, _exact) = fm::eliminate(&cur, var)?;
        cur = next;
    }
    Ok(out)
}

fn dedup_terms(terms: &mut Vec<BoundTerm>) {
    let mut seen: Vec<BoundTerm> = Vec::with_capacity(terms.len());
    for t in std::mem::take(terms) {
        if !seen.contains(&t) {
            seen.push(t);
        }
    }
    *terms = seen;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, i: usize) -> LinExpr {
        LinExpr::var(n, i)
    }
    fn k(n: usize, c: Int) -> LinExpr {
        LinExpr::constant(n, c)
    }
    fn scan_bounds_ok(sys: &System, order: &[usize]) -> Vec<VarBounds> {
        scan_bounds(sys, order).expect("small systems cannot overflow")
    }

    #[test]
    fn rectangular() {
        // vars: 0:N (param), 1:i, 2:j ; 1<=i<=N, 1<=j<=N
        let n = 3;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s.add_ge(v(n, 2) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 2));
        let b = scan_bounds_ok(&s, &[1, 2]);
        // i: 1 <= i <= N
        assert_eq!(b[0].eval_lower(&[10, 0, 0]), Some(1));
        assert_eq!(b[0].eval_upper(&[10, 0, 0]), Some(10));
        // j: 1 <= j <= N regardless of i
        assert_eq!(b[1].eval_lower(&[10, 5, 0]), Some(1));
        assert_eq!(b[1].eval_upper(&[10, 5, 0]), Some(10));
    }

    #[test]
    fn triangular() {
        // 1 <= i <= N, i+1 <= j <= N (the paper's inner J loop)
        let n = 3;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s.add_ge(v(n, 2) - v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 2));
        let b = scan_bounds_ok(&s, &[1, 2]);
        // outer i: 1 <= i <= N - 1 (from i + 1 <= j <= N after elimination)
        assert_eq!(b[0].eval_lower(&[10, 0, 0]), Some(1));
        assert_eq!(b[0].eval_upper(&[10, 0, 0]), Some(9));
        // inner j at i = 4: 5 <= j <= 10
        assert_eq!(b[1].eval_lower(&[10, 4, 0]), Some(5));
        assert_eq!(b[1].eval_upper(&[10, 4, 0]), Some(10));
    }

    #[test]
    fn interchanged_triangular() {
        // same set scanned j outer, i inner: 2 <= j <= N, 1 <= i <= j-1
        let n = 3;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s.add_ge(v(n, 2) - v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 2));
        let b = scan_bounds_ok(&s, &[2, 1]);
        assert_eq!(b[0].eval_lower(&[10, 0, 0]), Some(2));
        assert_eq!(b[0].eval_upper(&[10, 0, 0]), Some(10));
        // at j = 7: 1 <= i <= 6
        assert_eq!(b[1].eval_lower(&[10, 0, 7]), Some(1));
        assert_eq!(b[1].eval_upper(&[10, 0, 7]), Some(6));
    }

    #[test]
    fn divided_bounds() {
        // 0 <= 2i <= N: i in 0..floor(N/2)
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) * 2);
        s.add_ge(v(n, 0) - v(n, 1) * 2);
        let b = scan_bounds_ok(&s, &[1]);
        assert_eq!(b[0].eval_lower(&[7, 0]), Some(0));
        assert_eq!(b[0].eval_upper(&[7, 0]), Some(3));
        // note: add_ge tightening already divides 2i >= 0 by 2, but the
        // upper bound keeps its divisor
        assert!(b[0].uppers.iter().any(|t| t.div == 2) || b[0].eval_upper(&[7, 0]) == Some(3));
    }

    #[test]
    fn bounds_enumerate_exact_set() {
        // brute-force check: scanning the triangular set enumerates exactly
        // the original points
        let n = 3;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s.add_ge(v(n, 2) - v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 2));
        let b = scan_bounds_ok(&s, &[1, 2]);
        let nval = 6;
        let mut scanned = Vec::new();
        let mut pt = [nval, 0, 0];
        let (ilo, ihi) = (b[0].eval_lower(&pt).unwrap(), b[0].eval_upper(&pt).unwrap());
        for i in ilo..=ihi {
            pt[1] = i;
            let (jlo, jhi) = (b[1].eval_lower(&pt).unwrap(), b[1].eval_upper(&pt).unwrap());
            for j in jlo..=jhi {
                scanned.push((i, j));
            }
        }
        let mut expected = Vec::new();
        for i in 1..=nval {
            for j in i + 1..=nval {
                expected.push((i, j));
            }
        }
        assert_eq!(scanned, expected);
    }
}
