//! # inl-poly
//!
//! Affine constraint systems and exact integer linear arithmetic for the
//! `inl` loop-transformation framework.
//!
//! This crate plays the role the **Omega toolkit** [Pugh 1992] plays in the
//! paper: dependence analysis builds a system of integer linear constraints
//! (loop bounds, subscript equality, precedence), then *projects* it onto the
//! dependence-difference variables Δ to extract distance/direction
//! information, and *decides feasibility* to prune non-existent dependences.
//! Code generation uses the same machinery to compute transformed loop
//! bounds (Fourier–Motzkin elimination in the manner of Ancourt & Irigoin).
//!
//! The central types:
//!
//! * [`LinExpr`] — a linear expression `Σ aᵢ·xᵢ + c` over indexed variables;
//! * [`System`] — a conjunction of equalities (`= 0`) and inequalities
//!   (`≥ 0`), with normalization and gcd-based integer tightening;
//! * [`fm`] — Fourier–Motzkin elimination, projection, per-variable bounds,
//!   and an Omega-style feasibility test (real shadow + exactness tracking +
//!   dark shadow);
//! * [`bounds`] — extraction of loop bounds (`max`/`min` of affine forms
//!   with ceiling/floor divisions) for code generation;
//! * [`cache`] — process-wide memoization of projection, feasibility, and
//!   bounds queries, keyed by [`System::canonicalized`] form (`INL_POLY_CACHE=0`
//!   disables memoization; answers are identical either way).
//!
//! # Example: the paper's §3 dependence system
//!
//! ```
//! use inl_poly::{LinExpr, System};
//!
//! // variables: 0:N, 1:Iw, 2:Ir, 3:Jr
//! let mut sys = System::new(4);
//! sys.add_ge(LinExpr::var(4, 1) - LinExpr::constant(4, 1));        // Iw >= 1
//! sys.add_ge(LinExpr::var(4, 0) - LinExpr::var(4, 1));             // Iw <= N
//! sys.add_ge(LinExpr::var(4, 2) - LinExpr::constant(4, 1));        // Ir >= 1
//! sys.add_ge(LinExpr::var(4, 0) - LinExpr::var(4, 2));             // Ir <= N
//! sys.add_ge(LinExpr::var(4, 3) - LinExpr::var(4, 2) - LinExpr::constant(4, 1)); // Jr > Ir
//! sys.add_ge(LinExpr::var(4, 0) - LinExpr::var(4, 3));             // Jr <= N
//! sys.add_eq(LinExpr::var(4, 2) - LinExpr::var(4, 1));             // same location: Ir = Iw
//! // Δ2 = Jr - Iw has lower bound 1 and no upper bound: direction "+"
//! let delta2 = LinExpr::var(4, 3) - LinExpr::var(4, 1);
//! let (lo, hi) = inl_poly::fm::expr_bounds(&sys, &delta2).unwrap();
//! assert_eq!(lo, Some(1));
//! assert_eq!(hi, None);
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod cache;
pub mod expr;
pub mod fm;
pub mod system;

pub use bounds::{scan_bounds, BoundTerm, VarBounds};
pub use cache::{cache_enabled, set_cache_enabled, CacheStats};
pub use expr::LinExpr;
pub use fm::{eliminate, expr_bounds, is_empty, project, var_bounds, Feasibility};
pub use system::System;

pub use inl_linalg::{InlError, InlErrorKind, Int};
