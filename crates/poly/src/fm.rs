//! Fourier–Motzkin elimination with integer tightening, projection,
//! per-variable bounds, and Omega-style feasibility.
//!
//! This is the dependence-analysis engine the paper delegates to "any
//! integer linear programming tool, such as the Omega tool-kit". Soundness
//! contract:
//!
//! * [`eliminate`]'s result is a *superset* of the true integer projection
//!   (the "real shadow", with gcd tightening). Emptiness of the result
//!   therefore proves emptiness of the original set.
//! * Each elimination step records whether it was *exact* (Pugh's condition:
//!   one of the combined coefficients is 1). An all-exact elimination chain
//!   computes the integer projection exactly.
//! * [`is_empty`] additionally tracks the *dark shadow* (a subset of the
//!   projection): a feasible dark shadow proves non-emptiness even when some
//!   step was inexact.
//!
//! The three public queries — [`project`], [`is_empty`], [`var_bounds`] —
//! first rewrite the input into its canonical form
//! ([`System::canonicalized`]: sign-normalized rows, dominated
//! inequalities pruned, rows sorted and deduplicated) and then answer as a
//! pure function of that canonical system, memoized process-wide by
//! [`crate::cache`]. Because canonicalization runs whether or not the
//! cache is enabled, cached and uncached runs produce identical answers.

use crate::cache::{self, Answer, Query};
use crate::{LinExpr, System};
use inl_linalg::{gcd, InlError, InlErrorKind, Int};

/// Outcome of the integer feasibility test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// Certainly no integer point.
    Empty,
    /// Certainly at least one integer point.
    NonEmpty,
    /// Rationally feasible, but integer feasibility could not be decided
    /// (inexact elimination and empty dark shadow). Callers treat this as
    /// "may be non-empty", which is conservative for dependence analysis.
    Unknown,
}

/// Safety valve: beyond this many inequalities, elimination bails out
/// (treated as `Unknown` by feasibility, and as a typed
/// [`InlErrorKind::Budget`] error by projection, since loop nests never
/// get near it).
const MAX_INEQS: usize = 20_000;

/// Eliminate variable `var` by Fourier–Motzkin. Returns the resulting
/// system (same variable space, `var` unconstrained/unused) and whether the
/// elimination was exact over the integers. Fails with a typed
/// [`InlError`] on coefficient overflow or inequality-budget exhaustion
/// instead of panicking.
pub fn eliminate(sys: &System, var: usize) -> Result<(System, bool), InlError> {
    eliminate_one(sys, var, false)
}

/// Core single-system elimination. `dark` selects the dark-shadow variant
/// (each lower/upper combination is strengthened by `(a-1)(b-1)`).
fn eliminate_one(sys: &System, var: usize, dark: bool) -> Result<(System, bool), InlError> {
    inl_obs::counter_add!("poly.fm.eliminations", 1);
    let n = sys.nvars();
    let mut out = System::new(n);
    if sys.is_trivially_empty() {
        out.add_ge(LinExpr::constant(n, -1));
        return Ok((out, true));
    }

    // First try an exact substitution using an equality with a ±1
    // coefficient on `var` (always integer-exact).
    for eq in sys.eqs() {
        let c = eq.coeff(var);
        if c == 1 || c == -1 {
            // c·var + rest = 0  =>  var = -rest/c = -c·rest (c = ±1)
            let mut rest = eq.clone();
            rest.set_coeff(var, 0);
            let replacement = rest.checked_scale(-c)?; // -rest when c=1, rest when c=-1
            return Ok((sys.checked_substitute(var, &replacement)?, true));
        }
    }

    let mut exact = true;
    let ineqs = sys.checked_to_ineqs()?; // remaining (non-unit) equalities become two ineqs
    if !ineqs.iter().any(|e| e.coeff(var) != 0) {
        // var unconstrained: drop nothing
        for eq in sys.eqs() {
            out.add_eq(eq.clone());
        }
        for e in sys.ineqs() {
            out.add_ge(e.clone());
        }
        return Ok((out, true));
    }
    // Non-unit equalities being split means exactness is lost unless their
    // coefficient on var is 0 (handled above) — track it.
    if sys.eqs().iter().any(|e| e.coeff(var) != 0) {
        exact = false;
    }
    for eq in sys.eqs() {
        if eq.coeff(var) == 0 {
            out.add_eq(eq.clone());
        }
    }

    let mut lowers = Vec::new(); // a·var + e ≥ 0, a > 0
    let mut uppers = Vec::new(); // a·var + e ≥ 0, a < 0
    for e in &ineqs {
        match e.coeff(var).signum() {
            0 => {
                let is_split_eq = sys.eqs().contains(e)
                    || sys
                        .eqs()
                        .iter()
                        .any(|q| q.checked_neg().is_ok_and(|nq| &nq == e));
                if !is_split_eq {
                    out.add_ge(e.clone());
                }
            }
            1.. => lowers.push(e.clone()),
            _ => uppers.push(e.clone()),
        }
    }

    for l in &lowers {
        let a = l.coeff(var);
        for u in &uppers {
            let b = u
                .coeff(var)
                .checked_neg()
                .ok_or_else(|| InlError::overflow("fm upper coefficient"))?; // b > 0
            if a != 1 && b != 1 {
                exact = false;
            }
            let comb = if dark {
                // Dark shadow keeps the *original* multipliers — the
                // strengthened row (b·l + a·u) - (a-1)(b-1) is not
                // gcd-reducible without changing its meaning.
                let mut c = l.checked_scale(b)?.checked_add(&u.checked_scale(a)?)?;
                let slack = (a - 1)
                    .checked_mul(b - 1)
                    .and_then(|s| c.constant_term().checked_sub(s))
                    .ok_or_else(|| InlError::overflow("fm dark-shadow slack"))?;
                c.set_constant(slack);
                c
            } else {
                // Real shadow: gcd-reduce the multipliers. Every entry of
                // (b·l + a·u) is divisible by g = gcd(a, b), so
                // (b/g)·l + (a/g)·u equals the combination divided by g
                // exactly — same row after `add_ge` content-normalization,
                // with g² less intermediate coefficient growth.
                let g = gcd(a, b); // a, b > 0 ⇒ g ≥ 1
                l.checked_scale(b / g)?
                    .checked_add(&u.checked_scale(a / g)?)?
            };
            debug_assert_eq!(comb.coeff(var), 0);
            out.add_ge(comb);
            if out.ineqs().len() > MAX_INEQS {
                return Err(InlError::new(
                    InlErrorKind::Budget,
                    format!("fourier-motzkin blow-up: more than {MAX_INEQS} inequalities"),
                ));
            }
        }
    }
    out.prune_dominated();
    Ok((out, exact))
}

/// Pick the next variable to eliminate from `vars`: fewest lower×upper
/// products (greedy minimum-fill heuristic). Counts signs directly off the
/// equalities and inequalities (an equality contributes one lower and one
/// upper), so no row negation — and hence no overflow — is involved.
fn pick_var(sys: &System, vars: &[usize]) -> usize {
    let mut best = (usize::MAX, 0usize);
    for (idx, &v) in vars.iter().enumerate() {
        // An exact equality substitution is always the cheapest move.
        if sys
            .eqs()
            .iter()
            .any(|e| e.coeff(v) == 1 || e.coeff(v) == -1)
        {
            return idx;
        }
        let eq_nz = sys.eqs().iter().filter(|e| e.coeff(v) != 0).count();
        let lo = sys.ineqs().iter().filter(|e| e.coeff(v) > 0).count() + eq_nz;
        let hi = sys.ineqs().iter().filter(|e| e.coeff(v) < 0).count() + eq_nz;
        let cost = lo * hi;
        if cost < best.0 {
            best = (cost, idx);
        }
    }
    best.1
}

/// Project the system onto the variables in `keep`: eliminate every other
/// variable. The result lives in the *same* variable space (eliminated
/// variables simply no longer appear); the boolean reports whether the whole
/// chain was integer-exact. Errors (overflow, inequality budget) are
/// deterministic functions of the canonical input, so they memoize exactly
/// like successful answers.
///
/// The input is canonicalized first and the answer memoized (see
/// [`crate::cache`]); repeated projections of equivalent systems are free.
pub fn project(sys: &System, keep: &[usize]) -> Result<(System, bool), InlError> {
    let mut keep_key: Vec<usize> = keep.iter().copied().filter(|&v| v < sys.nvars()).collect();
    keep_key.sort_unstable();
    keep_key.dedup();
    let canon = sys.canonicalized();
    let keep_for_core = keep_key.clone();
    match cache::memo(canon, Query::Project(keep_key), move |c| {
        Answer::Project(project_core(c, &keep_for_core))
    }) {
        Answer::Project(r) => r,
        _ => unreachable!("project answered with a non-projection"),
    }
}

/// Elimination loop on an already-canonicalized system.
fn project_core(sys: &System, keep: &[usize]) -> Result<(System, bool), InlError> {
    let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
    let mut vars: Vec<usize> = (0..sys.nvars()).filter(|v| !keep_set.contains(v)).collect();
    let mut cur = sys.clone();
    let mut exact = true;
    while !vars.is_empty() {
        if cur.is_trivially_empty() {
            break;
        }
        let idx = pick_var(&cur, &vars);
        let v = vars.swap_remove(idx);
        let (next, ex) = eliminate(&cur, v)?;
        exact &= ex;
        cur = next;
    }
    Ok((cur, exact))
}

/// Integer feasibility of the system.
///
/// The input is canonicalized first and the verdict memoized (see
/// [`crate::cache`]). The `poly.feasibility` span and constraint-count
/// histogram fire on every call, hit or miss, so telemetry counts queries,
/// not cache state.
pub fn is_empty(sys: &System) -> Feasibility {
    let _span = inl_obs::span("poly.feasibility");
    inl_obs::hist_record!(
        "poly.fm.constraints",
        sys.ineqs().len() + 2 * sys.eqs().len()
    );
    if sys.is_trivially_empty() {
        return Feasibility::Empty;
    }
    let canon = sys.canonicalized();
    match cache::memo(canon, Query::Feasibility, |c| {
        Answer::Feasibility(is_empty_core(c))
    }) {
        Answer::Feasibility(f) => f,
        _ => unreachable!("feasibility answered with a non-verdict"),
    }
}

/// Shadow-chasing feasibility on an already-canonicalized system.
///
/// An overflow or budget failure in either shadow degrades the verdict
/// instead of failing the query: a dead dark shadow merely loses the
/// non-emptiness witness, a dead real shadow yields `Unknown` ("may be
/// non-empty"), which is the conservative answer for dependence analysis.
fn is_empty_core(sys: &System) -> Feasibility {
    let mut real = sys.clone();
    // `None` once the dark-shadow chain failed (overflow/budget): the
    // witness is abandoned, never the verdict.
    let mut dark = Some(sys.clone());
    let mut exact = true;
    let mut vars: Vec<usize> = (0..sys.nvars()).collect();
    while !vars.is_empty() {
        if real.is_trivially_empty() {
            return Feasibility::Empty;
        }
        let idx = pick_var(&real, &vars);
        let v = vars.swap_remove(idx);
        let (r, ex) = match eliminate_one(&real, v, false) {
            Ok(res) => res,
            Err(_) => {
                inl_obs::counter_add!("poly.feasibility.aborted", 1);
                return Feasibility::Unknown;
            }
        };
        dark = dark.and_then(|d| eliminate_one(&d, v, true).map(|(d2, _)| d2).ok());
        exact &= ex;
        real = r;
    }
    if real.is_trivially_empty() {
        Feasibility::Empty
    } else if exact {
        inl_obs::counter_add!("poly.feasibility.exact_hits", 1);
        Feasibility::NonEmpty
    } else if dark.as_ref().is_some_and(|d| !d.is_trivially_empty()) {
        inl_obs::counter_add!("poly.fm.dark_shadow_fallbacks", 1);
        Feasibility::NonEmpty
    } else {
        inl_obs::counter_add!("poly.feasibility.unknown", 1);
        Feasibility::Unknown
    }
}

/// Integer bounds of variable `var` over the system: eliminate every other
/// variable, then read off constant constraints on `var`.
///
/// The returned interval *contains* the set of values `var` takes on
/// integer points of the system (it is the tightened real shadow, hence
/// conservative). `None` means unbounded on that side. If the system is
/// infeasible the interval may be contradictory (`lo > hi`) — callers that
/// care should test [`is_empty`] first.
///
/// The input is canonicalized first and the interval memoized (see
/// [`crate::cache`]); the inner projection goes through the cached
/// [`project`], so a bounds query also warms the projection entry.
pub fn var_bounds(sys: &System, var: usize) -> Result<(Option<Int>, Option<Int>), InlError> {
    let canon = sys.canonicalized();
    match cache::memo(canon, Query::VarBounds(var), |c| {
        Answer::VarBounds(var_bounds_core(c, var))
    }) {
        Answer::VarBounds(r) => r,
        _ => unreachable!("var_bounds answered with a non-interval"),
    }
}

/// Bounds read-off on an already-canonicalized system.
fn var_bounds_core(sys: &System, var: usize) -> Result<(Option<Int>, Option<Int>), InlError> {
    let (proj, _) = project(sys, &[var])?;
    if proj.is_trivially_empty() {
        return Ok((Some(1), Some(0))); // canonical contradictory interval
    }
    let mut lo: Option<Int> = None;
    let mut hi: Option<Int> = None;
    let tighten_lo = |lo: &mut Option<Int>, v: Int| {
        *lo = Some(lo.map_or(v, |x| x.max(v)));
    };
    let tighten_hi = |hi: &mut Option<Int>, v: Int| {
        *hi = Some(hi.map_or(v, |x| x.min(v)));
    };
    let err = || InlError::overflow("bounds read-off");
    for e in proj.checked_to_ineqs()? {
        let a = e.coeff(var);
        let c = e.constant_term();
        match a.signum() {
            0 => {}
            1.. => tighten_lo(
                &mut lo,
                inl_linalg::ceil_div(c.checked_neg().ok_or_else(err)?, a),
            ),
            _ => tighten_hi(
                &mut hi,
                inl_linalg::floor_div(c, a.checked_neg().ok_or_else(err)?),
            ),
        }
    }
    Ok((lo, hi))
}

/// Integer bounds of an arbitrary linear expression over the system:
/// introduces a fresh variable `t = expr` and computes [`var_bounds`] on it.
///
/// # Panics
/// If `expr` is not over the system's variable space (a programming
/// error, not an input condition).
pub fn expr_bounds(sys: &System, expr: &LinExpr) -> Result<(Option<Int>, Option<Int>), InlError> {
    let n = sys.nvars();
    assert_eq!(expr.nvars(), n, "expr_bounds: arity mismatch");
    let mut ext = sys.extend(n + 1);
    let t = LinExpr::var(n + 1, n);
    ext.add_eq(t.checked_sub(&expr.extend(n + 1))?);
    var_bounds(&ext, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, i: usize) -> LinExpr {
        LinExpr::var(n, i)
    }
    fn k(n: usize, c: Int) -> LinExpr {
        LinExpr::constant(n, c)
    }

    /// 1 <= x <= 10, 1 <= y <= x
    fn triangle() -> System {
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(k(n, 10) - v(n, 0));
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s
    }

    #[test]
    fn eliminate_basic() {
        let (res, exact) = eliminate(&triangle(), 1).unwrap();
        assert!(exact);
        // y gone; x constraints survive: 1 <= x <= 10 (x >= 1 also from x >= y >= 1)
        assert!(res.contains(&[1, 999]));
        assert!(res.contains(&[10, 999]));
        assert!(!res.contains(&[0, 999]));
        assert!(!res.contains(&[11, 999]));
    }

    #[test]
    fn var_bounds_triangle() {
        let s = triangle();
        assert_eq!(var_bounds(&s, 0), Ok((Some(1), Some(10))));
        assert_eq!(var_bounds(&s, 1), Ok((Some(1), Some(10))));
    }

    #[test]
    fn expr_bounds_diag() {
        let n = 2;
        let s = triangle();
        // x - y ranges over 0..=9
        assert_eq!(
            expr_bounds(&s, &(v(n, 0) - v(n, 1))),
            Ok((Some(0), Some(9)))
        );
        // x + y ranges over 2..=20
        assert_eq!(
            expr_bounds(&s, &(v(n, 0) + v(n, 1))),
            Ok((Some(2), Some(20)))
        );
    }

    #[test]
    fn unbounded_sides() {
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 3)); // x >= 3
        assert_eq!(var_bounds(&s, 0), Ok((Some(3), None)));
        let empty_constraints = System::new(n);
        assert_eq!(var_bounds(&empty_constraints, 0), Ok((None, None)));
    }

    #[test]
    fn feasibility_simple() {
        assert_eq!(is_empty(&triangle()), Feasibility::NonEmpty);
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        assert_eq!(is_empty(&s), Feasibility::Empty);
    }

    #[test]
    fn feasibility_integer_gap() {
        // 2 <= 2x <= 3 has no integer solution (x would be 1.5-ish);
        // tightening: 2x >= 2 -> x >= 1; 2x <= 3 -> x <= 1; so x = 1, but
        // then 2x = 2 which satisfies both. Careful: 2x <= 3 tightens to
        // x <= 1 and 2*1 = 2 <= 3 holds. So this IS feasible.
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) * 2 - k(n, 2));
        s.add_ge(k(n, 3) - v(n, 0) * 2);
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
        // 3 <= 2x <= 3: 2x = 3 impossible
        let mut t = System::new(n);
        t.add_ge(v(n, 0) * 2 - k(n, 3));
        t.add_ge(k(n, 3) - v(n, 0) * 2);
        assert_eq!(is_empty(&t), Feasibility::Empty);
    }

    #[test]
    fn feasibility_eq_gcd() {
        // 2x + 4y = 5: gcd test fires
        let n = 2;
        let mut s = System::new(n);
        s.add_eq(v(n, 0) * 2 + v(n, 1) * 4 - k(n, 5));
        assert_eq!(is_empty(&s), Feasibility::Empty);
    }

    #[test]
    fn projection_keeps_relation() {
        // {(x, y, z) : z = x + y, 0 <= x, y <= 2} projected onto (x, z)
        let n = 3;
        let mut s = System::new(n);
        s.add_eq(v(n, 2) - v(n, 0) - v(n, 1));
        s.add_ge(v(n, 0));
        s.add_ge(k(n, 2) - v(n, 0));
        s.add_ge(v(n, 1));
        s.add_ge(k(n, 2) - v(n, 1));
        let (p, exact) = project(&s, &[0, 2]).unwrap();
        assert!(exact);
        // x <= z <= x + 2 must hold in the projection
        assert!(p.contains(&[1, 0, 2]));
        assert!(p.contains(&[1, 0, 1]));
        assert!(!p.contains(&[1, 0, 4]));
        assert!(!p.contains(&[1, 0, 0]));
    }

    #[test]
    fn paper_section3_directions() {
        // do I = 1..N { S1: A(I)=...; do J = I+1..N { S2: ...A(I)... } }
        // flow dep S1 -> S2 on A(I): vars 0:N 1:Iw 2:Ir 3:Jr
        let n = 4;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1)); // Iw >= 1
        s.add_ge(v(n, 0) - v(n, 1)); // Iw <= N
        s.add_ge(v(n, 2) - k(n, 1)); // Ir >= 1
        s.add_ge(v(n, 0) - v(n, 2)); // Ir <= N
        s.add_ge(v(n, 3) - v(n, 2) - k(n, 1)); // Jr >= Ir + 1
        s.add_ge(v(n, 0) - v(n, 3)); // Jr <= N
        s.add_ge(v(n, 2) - v(n, 1)); // read after write: Iw <= Ir
        s.add_eq(v(n, 2) - v(n, 1)); // same location: Ir = Iw
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
        // Δ1 = Ir - Iw = 0 exactly
        assert_eq!(
            expr_bounds(&s, &(v(n, 2) - v(n, 1))),
            Ok((Some(0), Some(0)))
        );
        // Δ2 = Jr - Iw >= 1, unbounded above: direction "+"
        assert_eq!(expr_bounds(&s, &(v(n, 3) - v(n, 1))), Ok((Some(1), None)));
    }

    #[test]
    fn empty_system_bounds_contradictory() {
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        let (lo, hi) = var_bounds(&s, 0).unwrap();
        assert!(lo.unwrap() > hi.unwrap());
    }

    #[test]
    fn dark_shadow_decides_nonempty() {
        // 0 <= 3x - 6y <= 0 with 1 <= x <= 9: x = 2y feasible (x=2,y=1).
        // Eliminating y via the equality route is non-unit, so exactness is
        // lost; dark shadow or substitution must still decide NonEmpty.
        let n = 2;
        let mut s = System::new(n);
        s.add_eq(v(n, 0) - v(n, 1) * 2); // x = 2y (unit on x though!)
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(k(n, 9) - v(n, 0));
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
    }

    #[test]
    fn projection_of_empty_is_empty() {
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        s.add_eq(v(n, 1) - v(n, 0));
        let (p, _) = project(&s, &[1]).unwrap();
        assert!(
            p.is_trivially_empty() || is_empty(&p) == Feasibility::Empty,
            "projection of empty set should be empty"
        );
    }
}
