//! Fourier–Motzkin elimination with integer tightening, projection,
//! per-variable bounds, and Omega-style feasibility.
//!
//! This is the dependence-analysis engine the paper delegates to "any
//! integer linear programming tool, such as the Omega tool-kit". Soundness
//! contract:
//!
//! * [`eliminate`]'s result is a *superset* of the true integer projection
//!   (the "real shadow", with gcd tightening). Emptiness of the result
//!   therefore proves emptiness of the original set.
//! * Each elimination step records whether it was *exact* (Pugh's condition:
//!   one of the combined coefficients is 1). An all-exact elimination chain
//!   computes the integer projection exactly.
//! * [`is_empty`] additionally tracks the *dark shadow* (a subset of the
//!   projection): a feasible dark shadow proves non-emptiness even when some
//!   step was inexact.
//!
//! The three public queries — [`project`], [`is_empty`], [`var_bounds`] —
//! first rewrite the input into its canonical form
//! ([`System::canonicalized`]: sign-normalized rows, dominated
//! inequalities pruned, rows sorted and deduplicated) and then answer as a
//! pure function of that canonical system, memoized process-wide by
//! [`crate::cache`]. Because canonicalization runs whether or not the
//! cache is enabled, cached and uncached runs produce identical answers.

use crate::cache::{self, Answer, Query};
use crate::{LinExpr, System};
use inl_linalg::Int;

/// Outcome of the integer feasibility test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// Certainly no integer point.
    Empty,
    /// Certainly at least one integer point.
    NonEmpty,
    /// Rationally feasible, but integer feasibility could not be decided
    /// (inexact elimination and empty dark shadow). Callers treat this as
    /// "may be non-empty", which is conservative for dependence analysis.
    Unknown,
}

/// Safety valve: beyond this many inequalities, elimination bails out
/// (treated as `Unknown` by feasibility, and as a panic by projection,
/// since loop nests never get near it).
const MAX_INEQS: usize = 20_000;

/// Eliminate variable `var` by Fourier–Motzkin. Returns the resulting
/// system (same variable space, `var` unconstrained/unused) and whether the
/// elimination was exact over the integers.
pub fn eliminate(sys: &System, var: usize) -> (System, bool) {
    eliminate_one(sys, var, false)
}

/// Core single-system elimination. `dark` selects the dark-shadow variant
/// (each lower/upper combination is strengthened by `(a-1)(b-1)`).
fn eliminate_one(sys: &System, var: usize, dark: bool) -> (System, bool) {
    inl_obs::counter_add!("poly.fm.eliminations", 1);
    let n = sys.nvars();
    let mut out = System::new(n);
    if sys.is_trivially_empty() {
        out.add_ge(LinExpr::constant(n, -1));
        return (out, true);
    }

    // First try an exact substitution using an equality with a ±1
    // coefficient on `var` (always integer-exact).
    for eq in sys.eqs() {
        let c = eq.coeff(var);
        if c.abs() == 1 {
            // c·var + rest = 0  =>  var = -rest/c = -c·rest (c = ±1)
            let mut rest = eq.clone();
            rest.set_coeff(var, 0);
            let replacement = -(rest * c); // -rest when c=1, rest when c=-1
            return (sys.substitute(var, &replacement), true);
        }
    }

    let mut exact = true;
    let ineqs = sys.to_ineqs(); // remaining (non-unit) equalities become two ineqs
    if !ineqs.iter().any(|e| e.coeff(var) != 0) {
        // var unconstrained: drop nothing
        for eq in sys.eqs() {
            out.add_eq(eq.clone());
        }
        for e in sys.ineqs() {
            out.add_ge(e.clone());
        }
        return (out, true);
    }
    // Non-unit equalities being split means exactness is lost unless their
    // coefficient on var is 0 (handled above) — track it.
    if sys.eqs().iter().any(|e| e.coeff(var) != 0) {
        exact = false;
    }
    for eq in sys.eqs() {
        if eq.coeff(var) == 0 {
            out.add_eq(eq.clone());
        }
    }

    let mut lowers = Vec::new(); // a·var + e ≥ 0, a > 0
    let mut uppers = Vec::new(); // a·var + e ≥ 0, a < 0
    for e in &ineqs {
        match e.coeff(var).signum() {
            0 => {
                if !sys.eqs().contains(e) && !sys.eqs().iter().any(|q| &-q.clone() == e) {
                    out.add_ge(e.clone());
                }
            }
            1.. => lowers.push(e.clone()),
            _ => uppers.push(e.clone()),
        }
    }

    for l in &lowers {
        let a = l.coeff(var);
        for u in &uppers {
            let b = -u.coeff(var); // b > 0
            if a != 1 && b != 1 {
                exact = false;
            }
            // b·l + a·u eliminates var
            let mut comb = l.clone() * b + u.clone() * a;
            debug_assert_eq!(comb.coeff(var), 0);
            if dark {
                // dark shadow: strengthen by (a-1)(b-1)
                comb.set_constant(comb.constant_term() - (a - 1) * (b - 1));
            }
            out.add_ge(comb);
            if out.ineqs().len() > MAX_INEQS {
                panic!("fourier-motzkin blow-up: more than {MAX_INEQS} inequalities");
            }
        }
    }
    out.prune_dominated();
    (out, exact)
}

/// Pick the next variable to eliminate from `vars`: fewest lower×upper
/// products (greedy minimum-fill heuristic).
fn pick_var(sys: &System, vars: &[usize]) -> usize {
    let ineqs = sys.to_ineqs();
    let mut best = (usize::MAX, 0usize);
    for (idx, &v) in vars.iter().enumerate() {
        // An exact equality substitution is always the cheapest move.
        if sys.eqs().iter().any(|e| e.coeff(v).abs() == 1) {
            return idx;
        }
        let lo = ineqs.iter().filter(|e| e.coeff(v) > 0).count();
        let hi = ineqs.iter().filter(|e| e.coeff(v) < 0).count();
        let cost = lo * hi;
        if cost < best.0 {
            best = (cost, idx);
        }
    }
    best.1
}

/// Project the system onto the variables in `keep`: eliminate every other
/// variable. The result lives in the *same* variable space (eliminated
/// variables simply no longer appear); the boolean reports whether the whole
/// chain was integer-exact.
///
/// The input is canonicalized first and the answer memoized (see
/// [`crate::cache`]); repeated projections of equivalent systems are free.
pub fn project(sys: &System, keep: &[usize]) -> (System, bool) {
    let mut keep_key: Vec<usize> = keep.iter().copied().filter(|&v| v < sys.nvars()).collect();
    keep_key.sort_unstable();
    keep_key.dedup();
    let canon = sys.canonicalized();
    let keep_for_core = keep_key.clone();
    match cache::memo(canon, Query::Project(keep_key), move |c| {
        let (p, exact) = project_core(c, &keep_for_core);
        Answer::Project(p, exact)
    }) {
        Answer::Project(p, exact) => (p, exact),
        _ => unreachable!("project answered with a non-projection"),
    }
}

/// Elimination loop on an already-canonicalized system.
fn project_core(sys: &System, keep: &[usize]) -> (System, bool) {
    let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
    let mut vars: Vec<usize> = (0..sys.nvars()).filter(|v| !keep_set.contains(v)).collect();
    let mut cur = sys.clone();
    let mut exact = true;
    while !vars.is_empty() {
        if cur.is_trivially_empty() {
            break;
        }
        let idx = pick_var(&cur, &vars);
        let v = vars.swap_remove(idx);
        let (next, ex) = eliminate(&cur, v);
        exact &= ex;
        cur = next;
    }
    (cur, exact)
}

/// Integer feasibility of the system.
///
/// The input is canonicalized first and the verdict memoized (see
/// [`crate::cache`]). The `poly.feasibility` span and constraint-count
/// histogram fire on every call, hit or miss, so telemetry counts queries,
/// not cache state.
pub fn is_empty(sys: &System) -> Feasibility {
    let _span = inl_obs::span("poly.feasibility");
    inl_obs::hist_record!(
        "poly.fm.constraints",
        sys.ineqs().len() + 2 * sys.eqs().len()
    );
    if sys.is_trivially_empty() {
        return Feasibility::Empty;
    }
    let canon = sys.canonicalized();
    match cache::memo(canon, Query::Feasibility, |c| {
        Answer::Feasibility(is_empty_core(c))
    }) {
        Answer::Feasibility(f) => f,
        _ => unreachable!("feasibility answered with a non-verdict"),
    }
}

/// Shadow-chasing feasibility on an already-canonicalized system.
fn is_empty_core(sys: &System) -> Feasibility {
    let mut real = sys.clone();
    let mut dark = sys.clone();
    let mut exact = true;
    let mut vars: Vec<usize> = (0..sys.nvars()).collect();
    while !vars.is_empty() {
        if real.is_trivially_empty() {
            return Feasibility::Empty;
        }
        let idx = pick_var(&real, &vars);
        let v = vars.swap_remove(idx);
        let (r, ex) = eliminate_one(&real, v, false);
        let (d, _) = eliminate_one(&dark, v, true);
        exact &= ex;
        real = r;
        dark = d;
    }
    if real.is_trivially_empty() {
        Feasibility::Empty
    } else if exact {
        inl_obs::counter_add!("poly.feasibility.exact_hits", 1);
        Feasibility::NonEmpty
    } else if !dark.is_trivially_empty() {
        inl_obs::counter_add!("poly.fm.dark_shadow_fallbacks", 1);
        Feasibility::NonEmpty
    } else {
        inl_obs::counter_add!("poly.feasibility.unknown", 1);
        Feasibility::Unknown
    }
}

/// Integer bounds of variable `var` over the system: eliminate every other
/// variable, then read off constant constraints on `var`.
///
/// The returned interval *contains* the set of values `var` takes on
/// integer points of the system (it is the tightened real shadow, hence
/// conservative). `None` means unbounded on that side. If the system is
/// infeasible the interval may be contradictory (`lo > hi`) — callers that
/// care should test [`is_empty`] first.
///
/// The input is canonicalized first and the interval memoized (see
/// [`crate::cache`]); the inner projection goes through the cached
/// [`project`], so a bounds query also warms the projection entry.
pub fn var_bounds(sys: &System, var: usize) -> (Option<Int>, Option<Int>) {
    let canon = sys.canonicalized();
    match cache::memo(canon, Query::VarBounds(var), |c| {
        let (lo, hi) = var_bounds_core(c, var);
        Answer::VarBounds(lo, hi)
    }) {
        Answer::VarBounds(lo, hi) => (lo, hi),
        _ => unreachable!("var_bounds answered with a non-interval"),
    }
}

/// Bounds read-off on an already-canonicalized system.
fn var_bounds_core(sys: &System, var: usize) -> (Option<Int>, Option<Int>) {
    let (proj, _) = project(sys, &[var]);
    if proj.is_trivially_empty() {
        return (Some(1), Some(0)); // canonical contradictory interval
    }
    let mut lo: Option<Int> = None;
    let mut hi: Option<Int> = None;
    let tighten_lo = |lo: &mut Option<Int>, v: Int| {
        *lo = Some(lo.map_or(v, |x| x.max(v)));
    };
    let tighten_hi = |hi: &mut Option<Int>, v: Int| {
        *hi = Some(hi.map_or(v, |x| x.min(v)));
    };
    for e in proj.to_ineqs() {
        let a = e.coeff(var);
        let c = e.constant_term();
        match a.signum() {
            0 => {}
            1.. => tighten_lo(&mut lo, inl_linalg::ceil_div(-c, a)),
            _ => tighten_hi(&mut hi, inl_linalg::floor_div(c, -a)),
        }
    }
    (lo, hi)
}

/// Integer bounds of an arbitrary linear expression over the system:
/// introduces a fresh variable `t = expr` and computes [`var_bounds`] on it.
pub fn expr_bounds(sys: &System, expr: &LinExpr) -> (Option<Int>, Option<Int>) {
    let n = sys.nvars();
    assert_eq!(expr.nvars(), n, "expr_bounds: arity mismatch");
    let mut ext = sys.extend(n + 1);
    let t = LinExpr::var(n + 1, n);
    ext.add_eq(t - expr.extend(n + 1));
    var_bounds(&ext, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, i: usize) -> LinExpr {
        LinExpr::var(n, i)
    }
    fn k(n: usize, c: Int) -> LinExpr {
        LinExpr::constant(n, c)
    }

    /// 1 <= x <= 10, 1 <= y <= x
    fn triangle() -> System {
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(k(n, 10) - v(n, 0));
        s.add_ge(v(n, 1) - k(n, 1));
        s.add_ge(v(n, 0) - v(n, 1));
        s
    }

    #[test]
    fn eliminate_basic() {
        let (res, exact) = eliminate(&triangle(), 1);
        assert!(exact);
        // y gone; x constraints survive: 1 <= x <= 10 (x >= 1 also from x >= y >= 1)
        assert!(res.contains(&[1, 999]));
        assert!(res.contains(&[10, 999]));
        assert!(!res.contains(&[0, 999]));
        assert!(!res.contains(&[11, 999]));
    }

    #[test]
    fn var_bounds_triangle() {
        let s = triangle();
        assert_eq!(var_bounds(&s, 0), (Some(1), Some(10)));
        assert_eq!(var_bounds(&s, 1), (Some(1), Some(10)));
    }

    #[test]
    fn expr_bounds_diag() {
        let n = 2;
        let s = triangle();
        // x - y ranges over 0..=9
        assert_eq!(expr_bounds(&s, &(v(n, 0) - v(n, 1))), (Some(0), Some(9)));
        // x + y ranges over 2..=20
        assert_eq!(expr_bounds(&s, &(v(n, 0) + v(n, 1))), (Some(2), Some(20)));
    }

    #[test]
    fn unbounded_sides() {
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 3)); // x >= 3
        assert_eq!(var_bounds(&s, 0), (Some(3), None));
        let empty_constraints = System::new(n);
        assert_eq!(var_bounds(&empty_constraints, 0), (None, None));
    }

    #[test]
    fn feasibility_simple() {
        assert_eq!(is_empty(&triangle()), Feasibility::NonEmpty);
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        assert_eq!(is_empty(&s), Feasibility::Empty);
    }

    #[test]
    fn feasibility_integer_gap() {
        // 2 <= 2x <= 3 has no integer solution (x would be 1.5-ish);
        // tightening: 2x >= 2 -> x >= 1; 2x <= 3 -> x <= 1; so x = 1, but
        // then 2x = 2 which satisfies both. Careful: 2x <= 3 tightens to
        // x <= 1 and 2*1 = 2 <= 3 holds. So this IS feasible.
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) * 2 - k(n, 2));
        s.add_ge(k(n, 3) - v(n, 0) * 2);
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
        // 3 <= 2x <= 3: 2x = 3 impossible
        let mut t = System::new(n);
        t.add_ge(v(n, 0) * 2 - k(n, 3));
        t.add_ge(k(n, 3) - v(n, 0) * 2);
        assert_eq!(is_empty(&t), Feasibility::Empty);
    }

    #[test]
    fn feasibility_eq_gcd() {
        // 2x + 4y = 5: gcd test fires
        let n = 2;
        let mut s = System::new(n);
        s.add_eq(v(n, 0) * 2 + v(n, 1) * 4 - k(n, 5));
        assert_eq!(is_empty(&s), Feasibility::Empty);
    }

    #[test]
    fn projection_keeps_relation() {
        // {(x, y, z) : z = x + y, 0 <= x, y <= 2} projected onto (x, z)
        let n = 3;
        let mut s = System::new(n);
        s.add_eq(v(n, 2) - v(n, 0) - v(n, 1));
        s.add_ge(v(n, 0));
        s.add_ge(k(n, 2) - v(n, 0));
        s.add_ge(v(n, 1));
        s.add_ge(k(n, 2) - v(n, 1));
        let (p, exact) = project(&s, &[0, 2]);
        assert!(exact);
        // x <= z <= x + 2 must hold in the projection
        assert!(p.contains(&[1, 0, 2]));
        assert!(p.contains(&[1, 0, 1]));
        assert!(!p.contains(&[1, 0, 4]));
        assert!(!p.contains(&[1, 0, 0]));
    }

    #[test]
    fn paper_section3_directions() {
        // do I = 1..N { S1: A(I)=...; do J = I+1..N { S2: ...A(I)... } }
        // flow dep S1 -> S2 on A(I): vars 0:N 1:Iw 2:Ir 3:Jr
        let n = 4;
        let mut s = System::new(n);
        s.add_ge(v(n, 1) - k(n, 1)); // Iw >= 1
        s.add_ge(v(n, 0) - v(n, 1)); // Iw <= N
        s.add_ge(v(n, 2) - k(n, 1)); // Ir >= 1
        s.add_ge(v(n, 0) - v(n, 2)); // Ir <= N
        s.add_ge(v(n, 3) - v(n, 2) - k(n, 1)); // Jr >= Ir + 1
        s.add_ge(v(n, 0) - v(n, 3)); // Jr <= N
        s.add_ge(v(n, 2) - v(n, 1)); // read after write: Iw <= Ir
        s.add_eq(v(n, 2) - v(n, 1)); // same location: Ir = Iw
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
        // Δ1 = Ir - Iw = 0 exactly
        assert_eq!(expr_bounds(&s, &(v(n, 2) - v(n, 1))), (Some(0), Some(0)));
        // Δ2 = Jr - Iw >= 1, unbounded above: direction "+"
        assert_eq!(expr_bounds(&s, &(v(n, 3) - v(n, 1))), (Some(1), None));
    }

    #[test]
    fn empty_system_bounds_contradictory() {
        let n = 1;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        let (lo, hi) = var_bounds(&s, 0);
        assert!(lo.unwrap() > hi.unwrap());
    }

    #[test]
    fn dark_shadow_decides_nonempty() {
        // 0 <= 3x - 6y <= 0 with 1 <= x <= 9: x = 2y feasible (x=2,y=1).
        // Eliminating y via the equality route is non-unit, so exactness is
        // lost; dark shadow or substitution must still decide NonEmpty.
        let n = 2;
        let mut s = System::new(n);
        s.add_eq(v(n, 0) - v(n, 1) * 2); // x = 2y (unit on x though!)
        s.add_ge(v(n, 0) - k(n, 1));
        s.add_ge(k(n, 9) - v(n, 0));
        assert_eq!(is_empty(&s), Feasibility::NonEmpty);
    }

    #[test]
    fn projection_of_empty_is_empty() {
        let n = 2;
        let mut s = System::new(n);
        s.add_ge(v(n, 0) - k(n, 5));
        s.add_ge(k(n, 3) - v(n, 0));
        s.add_eq(v(n, 1) - v(n, 0));
        let (p, _) = project(&s, &[1]);
        assert!(
            p.is_trivially_empty() || is_empty(&p) == Feasibility::Empty,
            "projection of empty set should be empty"
        );
    }
}
