//! Property-based tests for the integer-programming substrate. Everything
//! the dependence analysis and code generator conclude rests on these
//! soundness properties of Fourier–Motzkin elimination.

use inl_linalg::Int;
use inl_poly::{expr_bounds, fm, is_empty, scan_bounds, Feasibility, LinExpr, System};
use proptest::prelude::*;

const NVARS: usize = 3;

/// A random constraint `Σ aᵢxᵢ + c ≥ 0` with small coefficients.
fn small_constraint() -> impl Strategy<Value = LinExpr> {
    (prop::collection::vec(-3i64..=3, NVARS), -8i64..=8).prop_map(|(coeffs, c)| {
        LinExpr::from_parts(coeffs.into_iter().map(|x| x as Int).collect(), c as Int)
    })
}

/// A random system, biased towards feasible ones by adding box constraints.
fn small_system() -> impl Strategy<Value = System> {
    (prop::collection::vec(small_constraint(), 0..5), 1i64..=6).prop_map(|(cons, box_)| {
        let mut s = System::new(NVARS);
        for v in 0..NVARS {
            // -box <= x_v <= box keeps everything bounded
            s.add_ge(LinExpr::var(NVARS, v) + LinExpr::constant(NVARS, box_ as Int));
            s.add_ge(LinExpr::constant(NVARS, box_ as Int) - LinExpr::var(NVARS, v));
        }
        for c in cons {
            s.add_ge(c);
        }
        s
    })
}

/// Brute-force enumerate integer points of a bounded system.
fn enumerate(s: &System, bound: Int) -> Vec<[Int; NVARS]> {
    let mut out = Vec::new();
    for x in -bound..=bound {
        for y in -bound..=bound {
            for z in -bound..=bound {
                if s.contains(&[x, y, z]) {
                    out.push([x, y, z]);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    /// Eliminating a variable keeps every point's projection.
    #[test]
    fn elimination_preserves_points(s in small_system(), var in 0usize..NVARS) {
        let (proj, _) = fm::eliminate(&s, var).expect("small systems cannot overflow");
        for pt in enumerate(&s, 8) {
            prop_assert!(
                proj.contains(&pt),
                "point {pt:?} lost by eliminating x{var}"
            );
        }
    }

    /// Feasibility agrees with brute force.
    #[test]
    fn feasibility_sound(s in small_system()) {
        let pts = enumerate(&s, 8);
        match is_empty(&s) {
            Feasibility::Empty => prop_assert!(pts.is_empty(), "claimed empty but has {pts:?}"),
            Feasibility::NonEmpty => prop_assert!(!pts.is_empty(), "claimed non-empty but is empty"),
            Feasibility::Unknown => {} // conservative; allowed either way
        }
    }

    /// Bounds of an expression cover every feasible point's value.
    #[test]
    fn expr_bounds_cover(s in small_system(), e in small_constraint()) {
        let pts = enumerate(&s, 8);
        prop_assume!(!pts.is_empty());
        let (lo, hi) = expr_bounds(&s, &e).expect("small systems cannot overflow");
        for pt in pts {
            let v = e.eval(&pt);
            if let Some(l) = lo {
                prop_assert!(l <= v, "lower bound {l} exceeds value {v} at {pt:?}");
            }
            if let Some(h) = hi {
                prop_assert!(v <= h, "value {v} exceeds upper bound {h} at {pt:?}");
            }
        }
    }

    /// Projection keeps every point's kept coordinates.
    #[test]
    fn projection_preserves_points(s in small_system(), keep in 0usize..NVARS) {
        let (proj, _) = fm::project(&s, &[keep]).expect("small systems cannot overflow");
        for pt in enumerate(&s, 8) {
            prop_assert!(proj.contains(&pt), "projected point {pt:?} lost");
        }
    }

    /// Scanning bounds enumerate a superset of the integer points, and the
    /// original constraints filter it back exactly (the guard discipline
    /// code generation relies on).
    #[test]
    fn scan_bounds_cover_set(s in small_system()) {
        let pts = enumerate(&s, 8);
        prop_assume!(!pts.is_empty());
        let order = [0usize, 1, 2];
        let bounds = scan_bounds(&s, &order).expect("small systems cannot overflow");
        let mut scanned = Vec::new();
        let mut pt = [0 as Int; NVARS];
        let (Some(l0), Some(h0)) = (bounds[0].eval_lower(&pt), bounds[0].eval_upper(&pt)) else {
            return Err(TestCaseError::fail("unbounded outer despite box"));
        };
        for x in l0..=h0 {
            pt[0] = x;
            let (Some(l1), Some(h1)) = (bounds[1].eval_lower(&pt), bounds[1].eval_upper(&pt)) else {
                continue;
            };
            for y in l1..=h1 {
                pt[1] = y;
                let (Some(l2), Some(h2)) =
                    (bounds[2].eval_lower(&pt), bounds[2].eval_upper(&pt))
                else {
                    continue;
                };
                for z in l2..=h2 {
                    pt[2] = z;
                    if s.contains(&pt) {
                        scanned.push(pt);
                    }
                }
            }
        }
        scanned.sort();
        let mut expected = pts;
        expected.sort();
        prop_assert_eq!(scanned, expected, "scan+filter must enumerate the exact set");
    }

    /// Integer tightening never *adds* integer points.
    #[test]
    fn tightening_preserves_integer_semantics(
        coeffs in prop::collection::vec(-4i64..=4, NVARS),
        c in -10i64..=10,
        pt in prop::collection::vec(-6i64..=6, NVARS),
    ) {
        let e = LinExpr::from_parts(
            coeffs.iter().map(|&x| x as Int).collect(),
            c as Int,
        );
        let mut s = System::new(NVARS);
        s.add_ge(e.clone());
        let p: Vec<Int> = pt.iter().map(|&x| x as Int).collect();
        // containment in the normalized system == raw constraint truth
        let raw = e.eval(&p) >= 0;
        prop_assert_eq!(s.contains(&p) || s.is_trivially_empty(), raw || s.is_trivially_empty());
        if !s.is_trivially_empty() {
            prop_assert_eq!(s.contains(&p), raw);
        }
    }
}
