//! Differential properties for the query cache: every poly query answered
//! through the memo cache must be identical to the uncached answer —
//! feasibility verdicts, projected systems, and variable bounds. Both
//! paths canonicalize unconditionally, so the comparison is exact
//! equality, not just equivalence up to row order.

use inl_linalg::{InlError, Int};
use inl_poly::{cache, is_empty, project, var_bounds, LinExpr, System};
use proptest::prelude::*;
use std::sync::Mutex;

const NVARS: usize = 3;

/// The cache enable flag is process-global; property cases that toggle it
/// must not interleave with each other.
static CACHE_TOGGLE: Mutex<()> = Mutex::new(());

fn small_constraint() -> impl Strategy<Value = LinExpr> {
    (prop::collection::vec(-3i64..=3, NVARS), -8i64..=8).prop_map(|(coeffs, c)| {
        LinExpr::from_parts(coeffs.into_iter().map(|x| x as Int).collect(), c as Int)
    })
}

/// A random system with inequalities, an optional equality, and box
/// constraints keeping everything bounded.
fn small_system() -> impl Strategy<Value = System> {
    (
        prop::collection::vec(small_constraint(), 0..5),
        prop::collection::vec(small_constraint(), 0..2),
        1i64..=6,
    )
        .prop_map(|(ges, eqs, box_)| {
            let mut s = System::new(NVARS);
            for v in 0..NVARS {
                s.add_ge(LinExpr::var(NVARS, v) + LinExpr::constant(NVARS, box_ as Int));
                s.add_ge(LinExpr::constant(NVARS, box_ as Int) - LinExpr::var(NVARS, v));
            }
            for c in ges {
                s.add_ge(c);
            }
            for e in eqs {
                s.add_eq(e);
            }
            s
        })
}

/// All three public queries against `s`, in one bundle for comparison.
/// `Result`s are compared as-is: a cached error must equal the uncached
/// one.
type ProjectAnswer = Result<(System, bool), InlError>;
type BoundsAnswer = Vec<Result<(Option<Int>, Option<Int>), InlError>>;

fn query_all(s: &System, keep: &[usize]) -> (ProjectAnswer, inl_poly::Feasibility, BoundsAnswer) {
    (
        project(s, keep),
        is_empty(s),
        (0..NVARS).map(|v| var_bounds(s, v)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Cold miss, warm hit, and cache-off all answer identically.
    #[test]
    fn cached_queries_equal_uncached(s in small_system(), keep_mask in 0usize..(1 << NVARS)) {
        let keep: Vec<usize> = (0..NVARS).filter(|v| keep_mask & (1 << v) != 0).collect();
        let _g = CACHE_TOGGLE.lock().unwrap();

        cache::set_cache_enabled(false);
        let uncached = query_all(&s, &keep);

        cache::set_cache_enabled(true);
        cache::clear();
        let cold = query_all(&s, &keep); // misses: computed, then inserted
        let warm = query_all(&s, &keep); // hits: answered from the map

        cache::set_cache_enabled(true);
        prop_assert_eq!(&cold, &uncached, "cold cache pass diverged");
        prop_assert_eq!(&warm, &uncached, "warm cache pass diverged");
    }

    /// Canonicalization preserves the solution set exactly.
    #[test]
    fn canonical_form_same_solutions(s in small_system()) {
        let canon = s.canonicalized();
        for x in -7i64..=7 {
            for y in -7i64..=7 {
                for z in -7i64..=7 {
                    let pt = [x as Int, y as Int, z as Int];
                    prop_assert_eq!(
                        s.contains(&pt),
                        canon.contains(&pt),
                        "solution set changed at {:?}",
                        pt
                    );
                }
            }
        }
    }

    /// The canonical form is insertion-order independent and idempotent —
    /// the property that makes it a sound cache key.
    #[test]
    fn canonical_form_order_independent(cons in prop::collection::vec(small_constraint(), 0..6)) {
        let mut fwd = System::new(NVARS);
        let mut rev = System::new(NVARS);
        for c in &cons {
            fwd.add_ge(c.clone());
        }
        for c in cons.iter().rev() {
            rev.add_ge(c.clone());
        }
        let cf = fwd.canonicalized();
        let cr = rev.canonicalized();
        prop_assert_eq!(&cf, &cr, "insertion order leaked into the canonical form");
        prop_assert_eq!(&cf.canonicalized(), &cf, "canonicalization not idempotent");
    }
}
