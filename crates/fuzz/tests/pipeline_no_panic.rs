//! The tentpole property: the whole pipeline — dependence analysis,
//! legality, completion, structural operations, sinking, codegen — never
//! panics on input-dependent paths. Every random input must produce
//! either a result or a typed error.
//!
//! Case counts: `INL_FUZZ_CASES` (CI sets 2000 per property); local runs
//! default to a fast smoke count.

use inl_core::complete::complete_transform;
use inl_core::sink::sink_statements;
use inl_core::structural::{distribute, distribution_legal, jam, jamming_legal};
use inl_exec::{equivalent, run_fresh, VmRunner};
use inl_fuzz::{analyzed, arb_matrix, arb_program, compile, fuzz_config, fuzz_init, Compiled};
use inl_linalg::IVec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(fuzz_config(64))]

    /// Random program × random matrix: depend → legal → codegen returns,
    /// with a typed rejection or a generated program — never a panic.
    #[test]
    fn pipeline_never_panics(
        (p, m) in arb_program().prop_flat_map(|p| {
            let n = inl_core::instance::InstanceLayout::new(&p).len();
            (Just(p), arb_matrix(n, 2))
        }),
    ) {
        match compile(&p, &m) {
            Compiled::Ok(_) | Compiled::Rejected(_) => {}
        }
    }

    /// Differential agreement: whatever compiles runs bitwise identically
    /// under the tree interpreter and the bytecode VM, and — since the
    /// legality gate passed — matches the source program.
    #[test]
    fn compiled_programs_agree(
        (p, m, n) in arb_program().prop_flat_map(|p| {
            let k = inl_core::instance::InstanceLayout::new(&p).len();
            (Just(p), arb_matrix(k, 1), 1i64..5)
        }),
    ) {
        if let Compiled::Ok(result) = compile(&p, &m) {
            let params = [n as i128];
            // source vs generated under the interpreter
            prop_assert_eq!(
                equivalent(&p, &result.program, &params, &fuzz_init).map_err(|e| format!("src vs gen: {e}")),
                Ok(())
            );
            // interpreter vs VM on the generated program
            let mi = run_fresh(&result.program, &params, &fuzz_init);
            let mut mv = inl_exec::Machine::new(&result.program, &params, &fuzz_init);
            VmRunner::new(&result.program).run(&mut mv);
            prop_assert_eq!(
                mi.same_state(&mv).map_err(|e| format!("interp vs vm: {e}")),
                Ok(())
            );
        }
    }

    /// Completion: random partial rows either complete to a matrix the
    /// checker accepts, or fail with a typed `CompletionError`.
    #[test]
    fn completion_never_panics(
        (p, rows) in arb_program().prop_flat_map(|p| {
            let n = inl_core::instance::InstanceLayout::new(&p).len();
            let row = proptest::collection::vec(0..5usize, n)
                .prop_map(|cs| IVec::from(cs.iter().map(|&c| c as i128 - 2).collect::<Vec<_>>()));
            (Just(p), proptest::collection::vec(row, 1..3))
        }),
    ) {
        let Ok((layout, deps)) = analyzed(&p) else { return Ok(()); };
        if let Ok(c) = complete_transform(&p, &layout, &deps, &rows) {
            let report = inl_core::legal::check_legal(&p, &layout, &deps, &c.matrix)
                .map_err(|e| TestCaseError::fail(format!("legality after completion: {e}")))?;
            prop_assert!(report.is_legal(), "completion returned an illegal matrix");
        }
    }

    /// Structural operations: arbitrary (mostly invalid) distribute/jam
    /// targets report typed `InlError`s, and sinking returns a typed
    /// `SinkError` or a program — no panics, no asserts.
    #[test]
    fn structural_ops_never_panic(
        (p, li, split, idx) in arb_program().prop_flat_map(|p| {
            let nloops = p.loops().count();
            (Just(p), 0..nloops.max(1), 0usize..4, 0usize..4)
        }),
    ) {
        let Ok((layout, deps)) = analyzed(&p) else { return Ok(()); };
        let loops: Vec<_> = p.loops().collect();
        let l = loops[li.min(loops.len() - 1)];
        let parent = p.loops_surrounding_loop(l).first().copied();
        let _ = distribute(&p, &layout, l, split);
        let _ = distribution_legal(&p, &deps, l, split);
        let _ = jam(&p, &layout, parent, idx);
        let _ = jamming_legal(&p, &deps, parent, idx);
        let _ = sink_statements(&p);
    }
}
