//! Error-not-crash properties for the arithmetic substrates: the
//! polyhedral layer (Fourier–Motzkin, feasibility, bound scanning) and
//! the exact linear algebra survive near-`i128`-extreme coefficients,
//! returning typed [`inl_linalg::InlError`]s instead of overflowing or
//! panicking.

use inl_fuzz::{arb_system, fuzz_config};
use inl_linalg::{ext_gcd, gcd, lcm, IMat, Int, Rational};
use inl_poly::{fm, scan_bounds, Feasibility};
use proptest::prelude::*;

/// Interesting magnitudes: small, large, and within a factor of the
/// overflow boundary.
const MAGNITUDES: [Int; 4] = [3, 1 << 40, Int::MAX / 3, Int::MAX - 1];

proptest! {
    #![proptest_config(fuzz_config(64))]

    /// Fourier–Motzkin projection and feasibility on systems with extreme
    /// coefficients: `Ok`, a typed error, or `Feasibility::Unknown` — and
    /// no panic on any path.
    #[test]
    fn poly_extreme_coefficients_never_panic(
        (sys, keep_mask) in (0..4usize, 0..4usize).prop_flat_map(|(mi, rows)| {
            (arb_system(4, rows + 1, MAGNITUDES[mi]), 0..16usize)
        }),
    ) {
        let keep: Vec<usize> = (0..4).filter(|i| keep_mask & (1 << i) != 0).collect();
        match fm::project(&sys, &keep) {
            Ok((projected, _exact)) => {
                // scanning the projection must also be panic-free
                let _ = scan_bounds(&projected, &keep);
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
        match fm::is_empty(&sys) {
            Feasibility::Empty | Feasibility::NonEmpty | Feasibility::Unknown => {}
        }
    }

    /// gcd/lcm/ext_gcd and `Rational` comparison at the `i128` extremes:
    /// typed overflow errors, never a wrapping panic.
    #[test]
    fn linalg_extremes_never_panic(
        (ai, bi, ci) in (0..8usize, 0..8usize, 0..8usize),
    ) {
        let pool: [Int; 8] = [
            0, 1, -1, Int::MAX, Int::MIN + 1, Int::MAX / 2, 1 << 62, -(1 << 62),
        ];
        let (a, b, c) = (pool[ai], pool[bi], pool[ci]);
        let g = gcd(a, b);
        prop_assert!(g >= 0);
        let _ = lcm(a, b);
        // Bezout identity on moderated inputs (the product stays in
        // range there; full-extreme inputs only need the no-panic half).
        let (a2, b2) = (a % (1 << 40), b % (1 << 40));
        let (g2, x, y) = ext_gcd(a2, b2);
        if g2 != 0 {
            prop_assert_eq!(
                a2.checked_mul(x)
                    .and_then(|ax| b2.checked_mul(y).and_then(|by| ax.checked_add(by))),
                Some(g2)
            );
        }
        let _ = ext_gcd(a, b);
        // Rational comparison cross-multiplies; it must escalate to
        // wide arithmetic instead of overflowing.
        if b != 0 && c != 0 {
            let r1 = Rational::new(a, b);
            let r2 = Rational::new(a.wrapping_sub(1).max(Int::MIN + 1), c);
            let _ = r1.cmp(&r2);
            let _ = r1 == r2;
        }
    }

    /// Gaussian elimination over extreme integer matrices: rank,
    /// nullspace, and rational inverse all return typed results.
    #[test]
    fn gauss_extremes_never_panic(
        (cells, n) in (2..4usize).prop_flat_map(|n| {
            (proptest::collection::vec(0..6usize, n * n), Just(n))
        }),
    ) {
        let pool: [Int; 6] = [0, 1, -1, 2, Int::MAX / 5, -(Int::MAX / 7)];
        let mut m = IMat::zeros(n, n);
        for (k, &c) in cells.iter().enumerate() {
            m[(k / n, k % n)] = pool[c];
        }
        let _ = m.checked_rank();
        let _ = inl_linalg::gauss::nullspace_int(&m);
        let _ = inl_linalg::gauss::inverse_rational(&m);
    }
}
