//! Wire-protocol fuzzing: the `inl-proto` decoder faces untrusted bytes
//! from the network, so its contract is stricter than the pipeline's —
//! *any* byte sequence must produce a typed error or a valid message,
//! never a panic, never an unbounded allocation.
//!
//! Three attack surfaces:
//!
//! 1. raw garbage into [`inl_proto::decode_request`] /
//!    [`inl_proto::decode_response`] (JSON parser, schema checks);
//! 2. raw garbage and truncations into [`inl_proto::read_frame`]
//!    (length-prefix handling);
//! 3. well-formed messages round-tripped (decode ∘ encode = id), so the
//!    defensive checks don't reject legitimate traffic.

use inl_fuzz::fuzz_config;
use inl_proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BackendChoice, CompileOutcome, FrameLimits, Request, Response,
};
use proptest::prelude::*;

fn small_limits() -> FrameLimits {
    FrameLimits {
        max_frame: 4096,
        max_json_depth: 16,
    }
}

/// Byte alphabet for the JSON-soup generator: the punctuation and digit
/// bytes a JSON parser actually branches on.
const SOUP: &[u8] = b"{}[]\":,09-.etfn \\x";

proptest! {
    #![proptest_config(fuzz_config(64))]

    /// Arbitrary bytes through both message decoders: typed error or
    /// valid message, never a panic.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let limits = FrameLimits::default();
        let _ = decode_request(&bytes, &limits);
        let _ = decode_response(&bytes, &limits);
        let tight = small_limits();
        let _ = decode_request(&bytes, &tight);
        let _ = decode_response(&bytes, &tight);
    }

    /// JSON-shaped garbage (punctuation soup) exercises the parser deeper
    /// than uniform bytes; still must not panic.
    #[test]
    fn decoders_never_panic_on_json_soup(
        picks in prop::collection::vec(0usize..SOUP.len(), 0..256)
    ) {
        let soup: Vec<u8> = picks.iter().map(|&i| SOUP[i]).collect();
        let _ = decode_request(&soup, &small_limits());
        let _ = decode_response(&soup, &small_limits());
    }

    /// Arbitrary bytes through the frame reader: every outcome is a
    /// clean EOF, a payload, or a typed error.
    #[test]
    fn read_frame_never_panics_on_garbage(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let mut r = &bytes[..];
        // Drain frames until EOF or error; must terminate (each Ok(Some)
        // consumes ≥ 4 bytes).
        while let Ok(Some(_)) = read_frame(&mut r, &small_limits()) {}
    }

    /// A valid frame truncated at any point is Malformed (or clean EOF
    /// when cut exactly at the boundary before the first byte).
    #[test]
    fn truncated_frames_are_typed_errors(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_pct in 0u64..=100,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let cut = (wire.len() * cut_pct as usize) / 100;
        let mut r = &wire[..cut];
        match read_frame(&mut r, &FrameLimits::default()) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the boundary"),
            Ok(Some(p)) => prop_assert_eq!(p, payload, "complete frame only when nothing was cut"),
            Err(inl_proto::FrameError::Malformed(_)) => prop_assert!(cut < wire.len()),
            Err(inl_proto::FrameError::Io(e)) => prop_assert!(false, "in-memory read failed: {e}"),
        }
    }

    /// decode ∘ encode = id over the request space the clients generate,
    /// including non-ASCII program names and boundary parameter values.
    #[test]
    fn requests_round_trip(
        name_ix in 0usize..6,
        with_order in prop::bool::ANY,
        order_ix in 0usize..4,
        params in prop::collection::vec(0u32..=4_294_967_295, 0..4),
        which in 0usize..6,
        vm in prop::bool::ANY,
        telemetry in prop::bool::ANY,
    ) {
        let program = ["matmul", "cholesky_kij", "", "x", "πρόγραμμα", "a b\nc\"d\\e"][name_ix]
            .to_string();
        let order = with_order
            .then(|| ["KJLI", "IKJL", "", "K\u{1F600}"][order_ix].to_string());
        let req = match which {
            0 => Request::Compile { program, order, telemetry },
            1 => Request::Run {
                program,
                params,
                order,
                backend: if vm { BackendChoice::Vm } else { BackendChoice::Interp },
                telemetry,
            },
            2 => Request::Explain { program, order, telemetry },
            3 => Request::Stats,
            4 => Request::Metrics,
            _ => Request::Shutdown,
        };
        let text = encode_request(&req);
        let back = decode_request(text.as_bytes(), &FrameLimits::default());
        prop_assert_eq!(back.as_ref(), Ok(&req), "through {}", text);
        // And framed: write → read must hand back the same payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, text.as_bytes()).unwrap();
        let payload = read_frame(&mut &wire[..], &FrameLimits::default())
            .unwrap()
            .unwrap();
        prop_assert_eq!(payload, text.into_bytes());
    }

    /// Telemetry-bearing responses and `metrics` replies round-trip
    /// exactly, and stripping telemetry reproduces the telemetry-off
    /// wire bytes — the byte-identity the load generator relies on.
    #[test]
    fn telemetry_responses_round_trip(
        which in 0usize..4,
        with_section in prop::bool::ANY,
        version in 0u64..4,
        count in 0u64..1000,
    ) {
        let section = with_section.then(|| {
            let mut stages = inl_obs::Json::object();
            let mut stage = inl_obs::Json::object();
            stage.insert("count", inl_obs::Json::Int(count));
            stages.insert("serve.compile", stage);
            let mut o = inl_obs::Json::object();
            o.insert("version", inl_obs::Json::Int(version));
            o.insert("stages", stages);
            o
        });
        let resp = match which {
            0 => Response::Compile {
                outcome: CompileOutcome::Legal { pseudocode: "do I = 1, N".into() },
                telemetry: section,
            },
            1 => Response::Run {
                digest: "0123456789abcdef".into(),
                arrays: 1,
                cells: count,
                telemetry: section,
            },
            2 => Response::Explain {
                verdict: "legal".into(),
                reason: "interchange".into(),
                telemetry: section,
            },
            _ => {
                let mut metrics = inl_obs::Json::object();
                metrics.insert("count", inl_obs::Json::Int(count));
                Response::Metrics { metrics }
            }
        };
        let text = encode_response(&resp);
        let back = decode_response(text.as_bytes(), &FrameLimits::default());
        prop_assert_eq!(back.as_ref(), Ok(&resp), "through {}", text);
        // Stripping telemetry yields exactly the bytes a telemetry-off
        // request would have gotten.
        let stripped = encode_response(&resp.strip_telemetry());
        prop_assert!(!stripped.contains("\"telemetry\""));
        if resp.telemetry().is_none() && !matches!(resp, Response::Metrics { .. }) {
            prop_assert_eq!(&stripped, &text);
        }
    }

    /// Every decoded response re-encodes to the same bytes (stability of
    /// the deterministic encoding the bitwise comparisons rely on).
    #[test]
    fn decoded_responses_reencode_identically(
        picks in prop::collection::vec(0usize..SOUP.len(), 0..256)
    ) {
        let soup: Vec<u8> = picks.iter().map(|&i| SOUP[i]).collect();
        if let Ok(resp) = decode_response(&soup, &FrameLimits::default()) {
            let text = encode_response(&resp);
            let again = decode_response(text.as_bytes(), &FrameLimits::default()).unwrap();
            prop_assert_eq!(encode_response(&again), text);
        }
    }
}
