//! Minimized regression cases for crashes the fuzz harness (and the
//! conversion work it validates) uncovered. Each test pins one formerly
//! panicking input to its typed error — these must stay green forever.

use inl_fuzz::{analyzed, build_program, compile, Compiled, ProgramRecipe};
use inl_linalg::{IMat, Int, Rational};
use inl_poly::{fm, LinExpr, System};

/// Fourier–Motzkin on rows with near-`i128` coefficients used to overflow
/// in the lower×upper combination (`l.scale(b) + u.scale(a)`); it must
/// report a typed Overflow error (or succeed after gcd-normalization).
#[test]
fn fm_coefficient_growth_is_typed_overflow() {
    let big = Int::MAX / 2;
    let mut s = System::new(3);
    s.add_ge(LinExpr::from_parts(vec![big, 1, 0], 0)); // big·x0 + x1 ≥ 0
    s.add_ge(LinExpr::from_parts(vec![-big, 0, 1], -1)); // -big·x0 + x2 - 1 ≥ 0
    s.add_ge(LinExpr::from_parts(vec![3, -big, 0], 5));
    s.add_ge(LinExpr::from_parts(vec![0, big, -3], 7));
    match fm::project(&s, &[2]) {
        Ok(_) => {}
        Err(e) => assert!(!e.to_string().is_empty(), "error must carry context"),
    }
}

/// `Rational` comparison cross-multiplies; `MAX/1` vs `(MAX-1)/2` used to
/// overflow the naive product. It must order correctly.
#[test]
fn rational_cmp_near_max_is_exact() {
    let a = Rational::new(Int::MAX, 1);
    let b = Rational::new(Int::MAX - 1, 2);
    assert!(a > b);
    let c = Rational::new(Int::MIN + 1, 3);
    assert!(c < b);
}

/// A guard contradicting the loop bounds plus a scaling (non-unimodular)
/// schedule drives Fourier–Motzkin trivially empty mid-projection; the
/// pipeline used to panic in bound globalization, now it reports a typed
/// codegen rejection.
#[test]
fn empty_domain_under_scaling_is_rejected() {
    use inl_ir::{Aff, Expr, ProgramBuilder};
    let mut b = ProgramBuilder::new("regress_empty");
    let n = b.param("N");
    let x = b.array("X", &[Aff::param(n) + Aff::konst(2)]);
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt_guarded(
                "S1",
                x,
                vec![Aff::var(j)],
                Expr::index(Aff::var(i)),
                vec![inl_ir::Guard::Ge(Aff::konst(0) - Aff::var(i))],
            );
        });
    });
    let p = b.finish();
    let mut m = IMat::identity(2);
    m[(0, 0)] = 2;
    m[(1, 1)] = 2;
    match compile(&p, &m) {
        Compiled::Rejected(msg) => assert!(msg.starts_with("codegen:"), "{msg}"),
        Compiled::Ok(_) => panic!("empty domain must not compile"),
    }
}

/// Jamming two loops whose bounds differ used to trip an `assert!` inside
/// the IR surgery; the structural layer must reject it first with a typed
/// `InvalidTarget` error naming the parent node.
#[test]
fn jam_mismatched_bounds_is_invalid_target() {
    use inl_ir::{Aff, Expr, ProgramBuilder};
    let mut b = ProgramBuilder::new("regress_jam");
    let n = b.param("N");
    let x = b.array("X", &[Aff::param(n) + Aff::konst(2)]);
    for (name, lo) in [("I", 1), ("J", 2)] {
        b.hloop(name, Aff::konst(lo), Aff::param(n), |b| {
            let v = b.loop_var(name);
            b.stmt(
                format!("S{name}"),
                x,
                vec![Aff::var(v)],
                Expr::index(Aff::var(v)),
            );
        });
    }
    let p = b.finish();
    let (layout, _) = analyzed(&p).expect("analysis");
    let err = inl_core::structural::jam(&p, &layout, None, 0).unwrap_err();
    assert_eq!(err.kind(), inl_linalg::InlErrorKind::InvalidTarget);
    assert!(err.to_string().contains("identical bounds"), "{err}");
}

/// Sinking a nest whose candidate loop has sibling statements *after* the
/// loop child used to hit an `expect` on the assumed node shape; it must
/// return a typed `SinkError` (or succeed) on every program shape the
/// generator produces.
#[test]
fn sink_handles_every_generated_shape() {
    for shape in 0..3 {
        for sibling in [false, true] {
            let p = build_program(&ProgramRecipe {
                shape,
                oa: 0,
                ob: 0,
                triangular: true,
                cross: false,
                guard: 0,
                sibling,
            });
            let _ = inl_core::sink::sink_statements(&p);
        }
    }
}

/// A rank-deficient (all-zero row) matrix flows through legality into
/// per-statement scheduling; it must come back as a typed rejection,
/// never a unwrap on the singular inverse.
#[test]
fn singular_matrix_is_rejected_not_unwrapped() {
    let p = build_program(&ProgramRecipe {
        shape: 0,
        oa: 0,
        ob: 0,
        triangular: false,
        cross: false,
        guard: 0,
        sibling: false,
    });
    let (layout, _) = analyzed(&p).expect("analysis");
    let m = IMat::zeros(layout.len(), layout.len());
    match compile(&p, &m) {
        Compiled::Rejected(_) => {}
        Compiled::Ok(_) => panic!("singular matrix must not compile"),
    }
}

// ---------------------------------------------------------------------
// Wire-protocol decoder seeds (inl-proto). These pin the hostile inputs
// the protocol fuzz properties are built around: each is the minimized
// representative of an attack class that must stay a typed error.
// ---------------------------------------------------------------------

/// Seed 1 — allocation bomb: a 4-byte header claiming a 4 GiB payload
/// followed by nothing. Must be rejected on the length check *before*
/// the payload buffer is allocated; an OOM abort here counts as a crash.
#[test]
fn proto_seed_oversized_length_prefix() {
    use inl_proto::{read_frame, FrameError, FrameLimits};
    let wire: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
    match read_frame(&mut &wire[..], &FrameLimits::default()) {
        Err(FrameError::Malformed(e)) => {
            assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

/// Seed 2 — recursion bomb: ten thousand open brackets. The JSON depth
/// limit must turn this into a typed Budget error instead of letting the
/// recursive-descent parser blow the stack.
#[test]
fn proto_seed_deep_nesting_bomb() {
    use inl_proto::{decode_request, FrameLimits};
    let payload = "[".repeat(10_000);
    let e = decode_request(payload.as_bytes(), &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::Budget);
}

/// Seed 3 — overflow probe: a `params` entry one past `u32::MAX` and a
/// 39-digit integer (past `u64`). Both must be typed IllFormed errors,
/// not wrap-arounds into accepted values.
#[test]
fn proto_seed_integer_overflow_params() {
    use inl_proto::{decode_request, FrameLimits};
    let just_past_u32 = br#"{"type": "run", "program": "matmul", "params": [4294967296]}"#;
    let e = decode_request(just_past_u32, &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
    let past_u64 = br#"{"type": "run", "program": "matmul", "params": [340282366920938463463374607431768211456]}"#;
    let e = decode_request(past_u64, &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
}

/// Seed 4 — truncated UTF-8 multibyte sequence straddling the payload
/// boundary (the first byte of a 4-byte emoji, then EOF). Typed error,
/// not a slicing panic inside the parser.
#[test]
fn proto_seed_truncated_utf8() {
    use inl_proto::{decode_request, FrameLimits};
    let wire: &[u8] = &[b'{', b'"', 0xF0, 0x9F];
    let e = decode_request(wire, &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
}

/// Seed 5 — type-confused telemetry flag: `"telemetry"` as a string, a
/// number, and a deeply nested array. The opt-in flag is strictly a
/// boolean (absent/null meaning off); anything else must be a typed
/// IllFormed error, never a silently-enabled capture and never a parser
/// panic on the nesting.
#[test]
fn proto_seed_type_confused_telemetry_flag() {
    use inl_proto::{decode_request, FrameLimits};
    for bad in [
        br#"{"type": "compile", "program": "matmul", "telemetry": "yes"}"#.as_slice(),
        br#"{"type": "compile", "program": "matmul", "telemetry": 1}"#.as_slice(),
        br#"{"type": "explain", "program": "matmul", "telemetry": [[[[[true]]]]]}"#.as_slice(),
    ] {
        let e = decode_request(bad, &FrameLimits::default()).unwrap_err();
        assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed, "{bad:?}");
    }
    // Absent and null both mean "off" — legitimate old-client traffic.
    for ok in [
        br#"{"type": "compile", "program": "matmul"}"#.as_slice(),
        br#"{"type": "compile", "program": "matmul", "telemetry": null}"#.as_slice(),
    ] {
        let req = decode_request(ok, &FrameLimits::default()).unwrap();
        assert!(!req.wants_telemetry(), "{ok:?}");
    }
}

/// Seed 6 — telemetry-section nesting bomb in a *response*: a `compile`
/// reply whose telemetry section is thousands of nested arrays. The
/// depth limit must answer with a typed Budget error before the
/// recursive-descent parser blows the stack, and a `metrics` reply whose
/// payload is not an object must be IllFormed, not a downstream unwrap.
#[test]
fn proto_seed_telemetry_section_nesting_bomb() {
    use inl_proto::{decode_response, FrameLimits};
    let bomb = format!(
        r#"{{"type": "compile", "status": "legal", "pseudocode": "x", "telemetry": {}{}"#,
        "[".repeat(5_000),
        "]".repeat(5_000)
    ) + "}";
    let e = decode_response(bomb.as_bytes(), &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::Budget);
    // Well-nested but non-object telemetry: typed IllFormed.
    let non_object =
        br#"{"type": "compile", "status": "legal", "pseudocode": "x", "telemetry": [1, 2]}"#;
    let e = decode_response(non_object, &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
    let bad_metrics = br#"{"type": "metrics", "metrics": 7}"#;
    let e = decode_response(bad_metrics, &FrameLimits::default()).unwrap_err();
    assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
}

/// Seed 7 — ranking an empty measured-variant list: `sweep_program` used
/// to `expect("at least one variant")` / `.max().unwrap()` when asked to
/// rank extremes over zero measurements. The extremes helper must return
/// a typed InvalidTarget error naming the sweep, never panic.
#[test]
fn sched_seed_empty_variant_list_is_typed_error() {
    let err = inl_sched::sweep::measured_extremes("phantom", &[])
        .expect_err("zero measurements cannot be ranked");
    let inl_sched::SchedError::Analysis(inner) = &err else {
        panic!("expected an analysis error, got {err}");
    };
    assert_eq!(inner.kind(), inl_linalg::InlErrorKind::InvalidTarget);
    assert!(err.to_string().contains("no measured variants"), "{err}");
}
