//! # inl-fuzz
//!
//! Crash-hunting fuzz harness for the transformation pipeline. The
//! contract under test is the panic-free guarantee: on *every*
//! input-dependent path — arbitrary programs, arbitrary (often illegal or
//! degenerate) transformation matrices, extreme coefficients — the
//! pipeline must either succeed or return a typed error. A panic is a bug.
//!
//! The harness has three layers, mirroring the pipeline:
//!
//! 1. **No panic** (`compile`): random program × random matrix through
//!    depend → legal → codegen; random partial rows through completion;
//!    random targets through the structural operations and sinking.
//! 2. **Differential agreement**: whatever compiles must execute bitwise
//!    identically under the tree interpreter and the bytecode VM, and
//!    match the source program whenever the legality checker accepted the
//!    matrix with no unsatisfied dependences.
//! 3. **Error, not crash**: the polyhedral and linear-algebra substrates
//!    survive near-`i128`-extreme coefficients, reporting
//!    [`inl_linalg::InlError`] instead of overflowing.
//!
//! Case counts come from the `INL_FUZZ_CASES` environment variable
//! (see [`fuzz_cases`]); CI runs each property with 2000 cases, local
//! `cargo test` defaults to a quick smoke run.
//!
//! Crashes found by the harness are minimized into committed regression
//! tests in `tests/regressions.rs`.

use inl_codegen::{generate, CodegenError, CodegenResult};
use inl_core::depend::{analyze, DependenceMatrix};
use inl_core::instance::InstanceLayout;
use inl_core::legal::check_legal;
use inl_ir::{Aff, Expr, Program, ProgramBuilder};
use inl_linalg::{IMat, Int};
use inl_poly::{LinExpr, System};
use proptest::prelude::*;
use proptest::test_runner::Config;

/// Number of cases per property: `INL_FUZZ_CASES` when set (CI uses
/// 2000), else `local_default`. Malformed values warn once to stderr
/// and fall back to the default (via [`inl_obs::env_usize`]).
pub fn fuzz_cases(local_default: u32) -> u32 {
    inl_obs::env_usize("INL_FUZZ_CASES", local_default as usize)
        .try_into()
        .unwrap_or(u32::MAX)
}

/// A proptest config honoring [`fuzz_cases`].
pub fn fuzz_config(local_default: u32) -> Config {
    Config {
        cases: fuzz_cases(local_default),
        ..Config::default()
    }
}

/// Outcome of pushing one program × matrix through the whole pipeline.
pub enum Compiled {
    /// Codegen succeeded; carries the source and the result.
    Ok(Box<CodegenResult>),
    /// A stage rejected the input with a typed error (the expected
    /// outcome for most random matrices).
    Rejected(String),
}

/// Run depend → legal → codegen on `(p, m)`. Every failure mode must
/// surface as `Rejected` — a panic anywhere in here is exactly the class
/// of bug this crate hunts.
pub fn compile(p: &Program, m: &IMat) -> Compiled {
    let layout = InstanceLayout::new(p);
    let deps = match analyze(p, &layout) {
        Ok(d) => d,
        Err(e) => return Compiled::Rejected(format!("analyze: {e}")),
    };
    match check_legal(p, &layout, &deps, m) {
        Ok(report) if !report.is_legal() => {
            return Compiled::Rejected(format!("illegal: {:?}", report.violations));
        }
        Ok(_) => {}
        Err(e) => return Compiled::Rejected(format!("legality: {e}")),
    }
    match generate(p, &layout, &deps, m) {
        Ok(r) => Compiled::Ok(Box::new(r)),
        Err(e) => Compiled::Rejected(format!("codegen: {e:?}")),
    }
}

/// Dependence analysis products for a program (helper for tests that need
/// the layout and matrix separately).
pub fn analyzed(p: &Program) -> Result<(InstanceLayout, DependenceMatrix), String> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).map_err(|e| e.to_string())?;
    Ok((layout, deps))
}

/// True when the codegen error is one of the typed, expected rejections —
/// as opposed to something that suggests an internal inconsistency.
pub fn is_typed_rejection(e: &CodegenError) -> bool {
    matches!(
        e,
        CodegenError::Illegal(_)
            | CodegenError::Schedule(_)
            | CodegenError::BoundMerge(_)
            | CodegenError::Unbounded(_)
            | CodegenError::Inl(_)
    )
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Parameters of a generated program; kept as a value so failures print a
/// reproducible recipe.
#[derive(Clone, Debug)]
pub struct ProgramRecipe {
    /// Shape selector: which statements surround the inner loop.
    pub shape: usize,
    /// Per-statement read offsets (±2).
    pub oa: Int,
    /// Second read offset.
    pub ob: Int,
    /// Inner loop lower bound is the outer variable (triangular).
    pub triangular: bool,
    /// Second statement reads the first statement's array.
    pub cross: bool,
    /// Guard selector: 0 = none, 1 = `i ≤ j`, 2 = `2 | i`, 3 = both.
    pub guard: usize,
    /// Add a second, sibling loop nest after the first.
    pub sibling: bool,
}

/// Build the program described by a recipe. Extents leave slack so ±2
/// offsets stay in range.
pub fn build_program(r: &ProgramRecipe) -> Program {
    let mut b = ProgramBuilder::new(format!(
        "fuzz_{}_{}_{}_{}{}{}{}",
        r.shape, r.oa, r.ob, r.triangular as u8, r.cross as u8, r.guard, r.sibling as u8
    ));
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(6);
    let x = b.array("X", &[ext.clone(), ext.clone()]);
    let y = b.array("Y", &[ext.clone(), ext.clone()]);
    let sh = |v: Aff| v + Aff::konst(3);
    let recipe = r.clone();
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        if recipe.shape != 1 {
            b.stmt(
                "S1",
                x,
                vec![sh(Aff::var(i)), sh(Aff::var(i))],
                Expr::add(
                    Expr::read(
                        x,
                        vec![sh(Aff::var(i) + Aff::konst(recipe.oa)), sh(Aff::var(i))],
                    ),
                    Expr::konst(1.0),
                ),
            );
        }
        let jlo = if recipe.triangular {
            Aff::var(i)
        } else {
            Aff::konst(1)
        };
        b.hloop("J", jlo, Aff::param(n), |b| {
            let i = b.loop_var("I");
            let j = b.loop_var("J");
            let src = if recipe.cross { x } else { y };
            let mut guards = Vec::new();
            if recipe.guard & 1 != 0 {
                guards.push(inl_ir::Guard::Ge(Aff::var(j) - Aff::var(i)));
            }
            if recipe.guard & 2 != 0 {
                guards.push(inl_ir::Guard::Div(Aff::var(i), 2));
            }
            b.stmt_guarded(
                "S2",
                y,
                vec![sh(Aff::var(i)), sh(Aff::var(j))],
                Expr::add(
                    Expr::read(
                        src,
                        vec![sh(Aff::var(i) + Aff::konst(recipe.ob)), sh(Aff::var(j))],
                    ),
                    Expr::index(Aff::var(i) + Aff::var(j)),
                ),
                guards,
            );
        });
        if recipe.shape == 2 {
            b.stmt(
                "S3",
                x,
                vec![sh(Aff::var(i)), sh(Aff::konst(0))],
                Expr::read(y, vec![sh(Aff::var(i)), sh(Aff::konst(1))]),
            );
        }
    });
    if r.sibling {
        b.hloop("K", Aff::konst(1), Aff::param(n), |b| {
            let k = b.loop_var("K");
            b.stmt(
                "S4",
                x,
                vec![sh(Aff::var(k)), sh(Aff::konst(1))],
                Expr::read(y, vec![sh(Aff::var(k)), sh(Aff::var(k))]),
            );
        });
    }
    b.finish()
}

/// Random imperfectly nested programs: shapes, triangular bounds, guards
/// (including divisibility), sibling nests.
pub fn arb_program() -> impl Strategy<Value = Program> {
    (
        0..3usize,
        -2..=2i64,
        -2..=2i64,
        prop::bool::ANY,
        prop::bool::ANY,
        0..4usize,
        prop::bool::ANY,
    )
        .prop_map(|(shape, oa, ob, triangular, cross, guard, sibling)| {
            build_program(&ProgramRecipe {
                shape,
                oa: oa as Int,
                ob: ob as Int,
                triangular,
                cross,
                guard,
                sibling,
            })
        })
}

/// A random square integer matrix with entries in `[-bound, bound]` —
/// deliberately *not* restricted to legal or unimodular transformations,
/// so singular, illegal, and structurally malformed matrices all flow
/// through the checker and codegen.
pub fn arb_matrix(n: usize, bound: i64) -> impl Strategy<Value = IMat> {
    let span = (2 * bound + 1) as usize;
    prop::collection::vec(0..span, n * n).prop_map(move |cells| {
        let mut m = IMat::zeros(n, n);
        for (k, c) in cells.iter().enumerate() {
            m[(k / n, k % n)] = *c as Int - bound as Int;
        }
        m
    })
}

/// A random constraint system over `nvars` variables. `magnitude` selects
/// the coefficient range; pass something near `i128::MAX` to hunt
/// overflow escalation bugs in Fourier–Motzkin and feasibility checks.
pub fn arb_system(nvars: usize, rows: usize, magnitude: Int) -> impl Strategy<Value = System> {
    let coeff = prop::collection::vec(0u64..7, nvars + 1);
    prop::collection::vec((coeff, proptest::strategy::Just(())), 1..=rows).prop_map(move |picked| {
        let mut s = System::new(nvars);
        for (cells, ()) in picked {
            let coeffs: Vec<Int> = cells[..nvars]
                .iter()
                .map(|&c| match c {
                    0 => 0,
                    1 => 1,
                    2 => -1,
                    3 => magnitude,
                    4 => -magnitude,
                    5 => magnitude / 2,
                    _ => 2,
                })
                .collect();
            let konst = match cells[nvars] {
                0 | 1 => 0,
                2 => 1,
                3 => -1,
                4 => magnitude,
                _ => -magnitude,
            };
            let e = LinExpr::from_parts(coeffs, konst);
            if cells[nvars] % 2 == 0 {
                s.add_ge(e);
            } else {
                s.add_eq(e);
            }
        }
        s
    })
}

/// Initial array contents used by the differential tests: deterministic,
/// index-dependent, never zero (so missed writes show up).
pub fn fuzz_init(_: &str, idx: &[usize]) -> f64 {
    let mut h: u64 = 0x9E37_79B9;
    for &i in idx {
        h = h.wrapping_mul(31).wrapping_add(i as u64 + 1);
    }
    ((h % 97) as f64 + 1.0) / 7.0
}
