//! Matrix multiplication is the contrast case to Cholesky: a *perfect*
//! nest whose only dependence is the reduction on `C[I][J]` carried by the
//! `K` loop, so **all six** loop permutations are legal. In the instance-
//! vector framework this falls out of the same machinery the imperfect
//! nests use (Lemma 2: perfect nests degenerate to iteration vectors).

use inl::codegen::generate;
use inl::core::complete::complete_transform;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::legal::check_legal;
use inl::core::parallel::parallel_slots;
use inl::exec::equivalent;
use inl::ir::zoo;
use inl::linalg::{IMat, IVec};

fn init(name: &str, idx: &[usize]) -> f64 {
    match name {
        "A" => (idx[0] * 3 + idx[1]) as f64 * 0.25,
        "B" => (idx[0] + idx[1] * 2) as f64 * 0.5,
        _ => 0.0,
    }
}

fn permutations3() -> Vec<[usize; 3]> {
    vec![
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

#[test]
fn all_six_matmul_permutations_legal_and_identical() {
    let p = zoo::matmul();
    let layout = InstanceLayout::new(&p);
    assert_eq!(layout.len(), 3, "perfect nest: iteration vectors");
    let deps = analyze(&p, &layout).expect("analysis");
    let mut legal_count = 0;
    for pm in permutations3() {
        // rows: slot r takes old position pm[r]
        let rows: Vec<IVec> = pm.iter().map(|&q| IVec::unit(3, q)).collect();
        let c = complete_transform(&p, &layout, &deps, &rows)
            .unwrap_or_else(|e| panic!("{pm:?} should be legal: {e:?}"));
        legal_count += 1;
        let result = generate(&p, &layout, &deps, &c.matrix).expect("codegen");
        for n in [1, 2, 5] {
            equivalent(&p, &result.program, &[n], &init).unwrap_or_else(|e| {
                panic!("{pm:?}, N={n}: {e}\n{}", result.program.to_pseudocode())
            });
        }
    }
    assert_eq!(legal_count, 6, "matmul admits all six permutations");
}

#[test]
fn matmul_parallel_dimensions() {
    // under the identity schedule, I and J are parallel (the reduction is
    // carried only by K)
    let p = zoo::matmul();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let id = IMat::identity(3);
    let report = check_legal(&p, &layout, &deps, &id).expect("legality");
    assert!(report.is_legal());
    let ast = report.new_ast.as_ref().unwrap();
    let slots = parallel_slots(&layout, &deps, ast, &id);
    assert_eq!(slots, vec![0, 1], "I and J parallel, K sequential");
}

#[test]
fn matmul_reversals_all_legal() {
    // a pure reduction is insensitive to any loop direction — but
    // floating-point addition is not associative, so only the K-preserving
    // reversals are bitwise identical. Reversing I or J is legal AND
    // bitwise identical (they're DOALL); reversing K is legal
    // (accumulation order flips) but produces a different rounding — the
    // legality test correctly accepts it because the *dependence* is
    // respected only if... it is NOT: C[I][J] chain is flow-dependent, so
    // reversing K must be rejected.
    let p = zoo::matmul();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    for (slot, expect_legal) in [(0usize, true), (1, true), (2, false)] {
        let mut m = IMat::identity(3);
        m[(slot, slot)] = -1;
        let r = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert_eq!(
            r.is_legal(),
            expect_legal,
            "reversal of slot {slot}: {:?}",
            r.violations
        );
        if expect_legal {
            let result = generate(&p, &layout, &deps, &m).expect("codegen");
            for n in [1, 4] {
                equivalent(&p, &result.program, &[n], &init).expect("identical");
            }
        }
    }
}
