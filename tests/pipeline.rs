//! Pipeline/closure tests: generated programs are first-class citizens —
//! they can be re-analyzed and transformed again (max/min bounds, guards
//! and all), and multi-parameter programs flow through the whole stack.

use inl::codegen::generate_seq;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::transform::Transform;
use inl::exec::{equivalent, run_fresh};
use inl::ir::{zoo, LoopId, Program};

fn looop(p: &Program, name: &str) -> LoopId {
    p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
}

fn wf_init(_: &str, idx: &[usize]) -> f64 {
    if idx[0] == 0 || idx[1] == 0 {
        1.0
    } else {
        0.0
    }
}

#[test]
fn multi_parameter_codegen() {
    // rectangular wavefront: two symbolic parameters through analysis,
    // legality, bounds generation and execution
    let p = zoo::rect_wavefront();
    let i = looop(&p, "I");
    let j = looop(&p, "J");
    let result = generate_seq(
        &p,
        &[Transform::Skew {
            target: i,
            source: j,
            factor: 1,
        }],
    )
    .expect("codegen");
    for (m, n) in [(1, 1), (1, 5), (5, 1), (3, 7), (7, 3), (6, 6)] {
        equivalent(&p, &result.program, &[m, n], &wf_init)
            .unwrap_or_else(|e| panic!("M={m} N={n}: {e}\n{}", result.program.to_pseudocode()));
    }
}

#[test]
fn chained_transformation_through_codegen() {
    // skew the wavefront, generate code, then re-analyze the GENERATED
    // program and interchange its loops — the result of a result.
    let p = zoo::wavefront();
    let i = looop(&p, "I");
    let j = looop(&p, "J");
    let step1 = generate_seq(
        &p,
        &[Transform::Skew {
            target: i,
            source: j,
            factor: 1,
        }],
    )
    .expect("step 1");
    let q = &step1.program;
    // the generated program must itself be analyzable
    let layout = InstanceLayout::new(q);
    let deps = analyze(q, &layout).expect("analysis");
    assert!(
        !deps.deps.is_empty(),
        "skewed program still has dependences"
    );
    // its two loops (outer wavefront, inner) can be interchanged: skewed
    // deps are (1,0) and (1,1); interchanged they are (0,1) and (1,1) —
    // still lexicographically positive
    let loops: Vec<_> = q.loops().collect();
    let step2 = generate_seq(q, &[Transform::Interchange(loops[0], loops[1])]).expect("step 2");
    for n in [1, 2, 5, 9] {
        equivalent(&p, &step2.program, &[n], &wf_init).unwrap_or_else(|e| {
            panic!(
                "N={n}: {e}\nstep1:\n{}\nstep2:\n{}",
                q.to_pseudocode(),
                step2.program.to_pseudocode()
            )
        });
    }
}

#[test]
fn sinking_baseline_agrees_where_it_applies() {
    // the classical baseline (§4.1) on the one zoo program it can handle
    let p = zoo::running_example();
    let q = inl::core::sink::sink_statements(&p).expect("sinkable");
    for n in [1, 2, 6] {
        equivalent(&p, &q, &[n], &|_, _| 0.0).expect("identical");
    }
    // and the sunk program is analyzable + transformable like any other:
    // its perfect 2-nest admits an interchange only if dependences allow;
    // S1 -> S2 is loop-independent (same (I,J)), S3's guards ride along
    let layout = InstanceLayout::new(&q);
    let deps = analyze(&q, &layout).expect("analysis");
    assert!(!deps.deps.is_empty());
}

#[test]
fn double_reversal_is_identity_semantics() {
    let p = zoo::independent_pair();
    let i = p.loops().next().unwrap();
    let step1 = generate_seq(&p, &[Transform::Reverse(i)]).expect("reverse once");
    let q = &step1.program;
    let qi = q.loops().next().unwrap();
    let step2 = generate_seq(q, &[Transform::Reverse(qi)]).expect("reverse twice");
    for n in [1, 4, 9] {
        equivalent(&p, &step2.program, &[n], &|_, _| 0.0).expect("identity");
    }
}

#[test]
fn generated_programs_validate_and_print() {
    // every codegen output in this file satisfies the IR invariants and
    // pretty-prints without panicking
    let p = zoo::rect_wavefront();
    let i = looop(&p, "I");
    let j = looop(&p, "J");
    let result = generate_seq(
        &p,
        &[Transform::Skew {
            target: i,
            source: j,
            factor: 1,
        }],
    )
    .expect("codegen");
    assert!(result.program.validate().is_ok());
    let text = result.program.to_pseudocode();
    assert!(text.contains("do"), "{text}");
    // instance multisets agree between source and target (same dynamic
    // instances, different order)
    let (_, t_src) = inl::exec::run_traced(&p, &[4, 6], &wf_init);
    let (_, t_dst) = inl::exec::run_traced(&result.program, &[4, 6], &wf_init);
    assert_eq!(
        t_src.len(),
        t_dst.len(),
        "same number of executed instances"
    );
    let _ = run_fresh(&result.program, &[2, 2], &wf_init);
}
