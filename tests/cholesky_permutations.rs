//! E6/E7: §6's completion on full Cholesky, and §1/§5's claim that all six
//! permutations of Cholesky's loops are legal — verified by enumerating
//! every assignment of the loop positions to the loop slots, completing the
//! edge order automatically, generating code and executing it.

use inl::codegen::generate;
use inl::core::complete::complete_transform;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::exec::{equivalent, run_fresh, Machine, VmRunner};
use inl::ir::{zoo, LoopId, Program};
use inl::linalg::IVec;

fn looop(p: &Program, name: &str) -> LoopId {
    p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
}

fn spd(_: &str, idx: &[usize]) -> f64 {
    if idx[0] == idx[1] {
        (idx[0] + 10) as f64
    } else {
        1.0 / ((idx[0] + idx[1] + 2) as f64)
    }
}

#[test]
fn e6_completion_produces_left_looking_cholesky() {
    // one partial row ("updated column outermost") completes to the
    // left-looking form, which then generates code computing the identical
    // factorization
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let l = looop(&p, "L");
    let partial = vec![IVec::unit(layout.len(), layout.loop_position(l))];
    let completion = complete_transform(&p, &layout, &deps, &partial).expect("completes");
    let result = generate(&p, &layout, &deps, &completion.matrix).expect("codegen");
    for n in [1, 2, 3, 6, 10] {
        equivalent(&p, &result.program, &[n], &spd)
            .unwrap_or_else(|e| panic!("N={n}: {e}\n{}", result.program.to_pseudocode()));
    }
    // the generated program also matches the hand-written left-looking
    // form semantically
    for n in [2, 5, 8] {
        equivalent(&zoo::cholesky_left_looking(), &result.program, &[n], &spd)
            .unwrap_or_else(|e| panic!("vs hand-written, N={n}: {e}"));
    }
}

/// Enumerate every permutation assignment of the four loop positions
/// (K, J, L, I) to the four loop slots and ask the completion procedure to
/// find a legal child order. Returns (assignment, matrix) for the legal
/// ones.
fn enumerate_permutations(p: &Program) -> Vec<(Vec<usize>, inl::linalg::IMat)> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).expect("analysis");
    let positions: Vec<usize> = [looop(p, "K"), looop(p, "J"), looop(p, "L"), looop(p, "I")]
        .iter()
        .map(|&l| layout.loop_position(l))
        .collect();
    let n = layout.len();
    let mut legal = Vec::new();
    // all 24 orderings of the four source positions across the four slots
    let mut perm = [0usize, 1, 2, 3];
    let mut perms = Vec::new();
    heap_permutations(&mut perm, 4, &mut perms);
    for pm in perms {
        let rows: Vec<IVec> = pm.iter().map(|&pi| IVec::unit(n, positions[pi])).collect();
        if let Ok(c) = complete_transform(p, &layout, &deps, &rows) {
            legal.push((pm.to_vec(), c.matrix));
        }
    }
    legal
}

fn heap_permutations(a: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
    if k == 1 {
        out.push(*a);
        return;
    }
    for i in 0..k {
        heap_permutations(a, k - 1, out);
        if k.is_multiple_of(2) {
            a.swap(i, k - 1);
        } else {
            a.swap(0, k - 1);
        }
    }
}

#[test]
fn e7_all_six_cholesky_forms_are_legal_and_correct() {
    // The paper (§1): "All six permutations of these three loops compute
    // the same result". Our 4-deep version (K, I, J, L with L inner to J)
    // admits several legal slot assignments; each must contain the
    // identity (right-looking KIJ) and the left-looking form, and every
    // legal one must generate code that executes bitwise identically.
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let legal = enumerate_permutations(&p);
    assert!(
        legal.len() >= 6,
        "expected at least six legal Cholesky loop orders, found {}",
        legal.len()
    );
    // identity assignment (K, J, L, I in source slot order) is legal
    assert!(
        legal.iter().any(|(pm, _)| pm == &vec![0, 1, 2, 3]),
        "identity (right-looking) missing"
    );
    // the left-looking assignment: outer = L position
    assert!(
        legal.iter().any(|(pm, _)| pm[0] == 2),
        "left-looking (updated-column outermost) missing"
    );
    for (pm, m) in &legal {
        let result = generate(&p, &layout, &deps, m)
            .unwrap_or_else(|e| panic!("codegen failed for {pm:?}: {e:?}"));
        for n in [1, 3, 6] {
            equivalent(&p, &result.program, &[n], &spd).unwrap_or_else(|e| {
                panic!(
                    "variant {pm:?}, N={n}: {e}\n{}",
                    result.program.to_pseudocode()
                )
            });
        }
    }
}

#[test]
fn e7_vm_backend_bitwise_identical_on_every_legal_variant() {
    // The bytecode VM is a drop-in second backend: on every framework-
    // generated Cholesky permutation variant (both families, twelve slot
    // assignments — a superset of the paper's six orders) it must produce
    // the identical factorization, bit for bit.
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let legal = enumerate_permutations(&p);
    assert!(legal.len() >= 6);
    for (pm, m) in &legal {
        let result = generate(&p, &layout, &deps, m)
            .unwrap_or_else(|e| panic!("codegen failed for {pm:?}: {e:?}"));
        let runner = VmRunner::new(&result.program); // compile once per variant
        for n in [1, 3, 6, 10] {
            let interp = run_fresh(&result.program, &[n], &spd);
            let mut vm = Machine::new(&result.program, &[n], &spd);
            runner.run(&mut vm);
            interp.same_state(&vm).unwrap_or_else(|e| {
                panic!(
                    "variant {pm:?}, N={n}: VM differs: {e}\n{}",
                    result.program.to_pseudocode()
                )
            });
        }
    }
}

#[test]
fn e7_exactly_two_families_are_expressible() {
    // 12 of the 24 slot assignments are legal: the right-looking family
    // (K outermost) and the left-looking family (L — the updated column —
    // outermost). The row-first ("bordered") family needs S2 and S3 to
    // interleave under TWO shared loops, i.e. loop fusion, which the
    // paper's completion procedure excludes (§7 lists extending completion
    // with fusion as future work) — the framework must reject it with an
    // ordering cycle rather than generate wrong code.
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let legal = enumerate_permutations(&p);
    assert_eq!(legal.len(), 12, "two families of six orders each");
    for (pm, _) in &legal {
        assert!(
            pm[0] == 0 || pm[0] == 2,
            "legal orders start with K or L, got {pm:?}"
        );
    }
    // the bordered attempt: outer = row index (J + I − K through padding)
    let n = layout.len();
    let pos = |nm: &str| layout.loop_position(looop(&p, nm));
    let row0 = &(&IVec::unit(n, pos("J")) + &IVec::unit(n, pos("I"))) - &IVec::unit(n, pos("K"));
    let partial = vec![
        row0,
        IVec::unit(n, pos("K")),
        IVec::unit(n, pos("L")),
        IVec::unit(n, pos("J")),
    ];
    assert!(matches!(
        complete_transform(&p, &layout, &deps, &partial),
        Err(inl::core::complete::CompletionError::OrderingCycle)
    ));
}

#[test]
fn e7_illegal_orders_are_rejected() {
    // sanity: some orders must be illegal or require reordering the
    // statements; with reversal rows thrown in, rejection must occur
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let k = looop(&p, "K");
    let n = layout.len();
    // reversed outer K can never be completed legally
    let partial = vec![-&IVec::unit(n, layout.loop_position(k))];
    assert!(complete_transform(&p, &layout, &deps, &partial).is_err());
}
