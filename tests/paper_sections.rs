//! Integration tests reproducing the paper's worked examples end-to-end
//! (experiments E1–E5 of DESIGN.md), exercising the public API exactly the
//! way the paper's prose walks through them.

use inl::core::depend::{analyze, DepEntry};
use inl::core::instance::InstanceLayout;
use inl::core::legal::check_legal;
use inl::core::transform::Transform;
use inl::exec::{equivalent, run_traced};
use inl::ir::{zoo, LoopId, Program, StmtId};
use inl::linalg::{lex::lex_cmp, IMat};
use std::cmp::Ordering;

fn looop(p: &Program, name: &str) -> LoopId {
    p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
}
fn stmt(p: &Program, name: &str) -> StmtId {
    p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
}

// ---------------------------------------------------------------- E1 (§2)

#[test]
fn e1_instance_vectors_encode_program_order() {
    // Figure 1/2: the §2 running example's dynamic instances, enumerated by
    // actually executing the program, map to strictly increasing instance
    // vectors (Theorem 1), and L is injective.
    let p = zoo::running_example();
    let layout = InstanceLayout::new(&p);
    let (_, trace) = run_traced(&p, &[5], &|_, _| 0.0);
    let vectors: Vec<_> = trace
        .instances
        .iter()
        .map(|r| layout.instance_vector(r.stmt, &r.iter))
        .collect();
    assert!(!vectors.is_empty());
    for w in vectors.windows(2) {
        assert_eq!(lex_cmp(&w[0], &w[1]), Ordering::Less);
    }
    // injectivity over the executed set
    let mut sorted: Vec<_> = vectors.iter().map(|v| v.as_slice().to_vec()).collect();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), vectors.len(), "L must be one-to-one");
}

#[test]
fn e1_l_inverse_roundtrips_execution() {
    // Definition 5: L⁻¹ recovers exactly the instance that executed.
    let p = zoo::running_example();
    let layout = InstanceLayout::new(&p);
    let (_, trace) = run_traced(&p, &[4], &|_, _| 0.0);
    for r in &trace.instances {
        let iv = layout.instance_vector(r.stmt, &r.iter);
        let (s, iter) = layout.decode(&p, &iv).expect("decodable");
        assert_eq!(s, r.stmt);
        assert_eq!(iter, r.iter);
    }
}

// ---------------------------------------------------------------- E2 (§2.2)

#[test]
fn e2_epsilon_optimization_for_perfect_nests() {
    // Figure 3: with the single-edge optimization, instance vectors of a
    // perfectly nested loop are its iteration vectors.
    let p = zoo::perfect_nest();
    let layout = InstanceLayout::new(&p);
    assert_eq!(layout.len(), 2, "no edge positions remain");
    let s1 = p.stmts().next().unwrap();
    assert_eq!(layout.instance_vector(s1, &[2, 9]).as_slice(), &[2, 9]);
}

// ---------------------------------------------------------------- E3 (§3)

#[test]
fn e3_dependence_matrix_of_simplified_cholesky() {
    // §3: the flow dependence from S1 to S2 is [0, 1, -1, +]'.
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let dm = analyze(&p, &layout).expect("analysis");
    assert!(dm.has_column(&[
        DepEntry::dist(0),
        DepEntry::dist(1),
        DepEntry::dist(-1),
        DepEntry::plus()
    ]));
    // every dependence keeps the retained polyhedron non-empty
    for d in &dm.deps {
        assert!(
            inl::poly::is_empty(&d.system) != inl::poly::Feasibility::Empty,
            "stored dependence with empty polyhedron"
        );
    }
}

// ---------------------------------------------------------------- E4 (§4)

#[test]
fn e4_transformation_matrices_act_as_printed() {
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let (i, j) = (looop(&p, "I"), looop(&p, "J"));
    let (s1, s2) = (stmt(&p, "S1"), stmt(&p, "S2"));

    // permutation (§4.1): S2's [I,1,0,J] -> [J,1,0,I]
    let perm = Transform::Interchange(i, j).matrix(&p, &layout);
    assert_eq!(
        perm.mul_vec(&layout.instance_vector(s2, &[3, 8]))
            .as_slice(),
        &[8, 1, 0, 3]
    );
    // skewing (§4.1): S1 lands at outer 0
    let skew = Transform::Skew {
        target: i,
        source: j,
        factor: -1,
    }
    .matrix(&p, &layout);
    assert_eq!(skew.mul_vec(&layout.instance_vector(s1, &[6]))[0], 0);
    // statement reordering (§4.2) is the printed matrix
    let reorder = Transform::ReorderChildren {
        parent: Some(i),
        perm: vec![1, 0],
    }
    .matrix(&p, &layout);
    assert_eq!(
        reorder,
        IMat::from_rows(&[
            &[1, 0, 0, 0][..],
            &[0, 0, 1, 0],
            &[0, 1, 0, 0],
            &[0, 0, 0, 1]
        ])
    );
    // alignment (§4.3): S1's I entry shifts, S2 untouched
    let align = Transform::Align {
        stmt: s1,
        looop: i,
        offset: 1,
    }
    .matrix(&p, &layout);
    assert_eq!(align.mul_vec(&layout.instance_vector(s1, &[4]))[0], 5);
    let v2 = layout.instance_vector(s2, &[4, 6]);
    assert_eq!(align.mul_vec(&v2), v2);
}

#[test]
fn e4_distribution_and_jamming_matrices() {
    // §4.2: distribution is a 5×4 matrix; jamming its 4×5 inverse action.
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let i = looop(&p, "I");
    let d = inl::core::structural::distribute(&p, &layout, i, 1).expect("distribute");
    assert_eq!((d.matrix.nrows(), d.matrix.ncols()), (5, 4));
    let j = inl::core::structural::jam(&d.target, &d.target_layout, None, 0).expect("jam");
    assert_eq!((j.matrix.nrows(), j.matrix.ncols()), (4, 5));
    // and the legality verdicts match the paper: distribution illegal for
    // Cholesky
    let deps = analyze(&p, &layout).expect("analysis");
    assert!(!inl::core::structural::distribution_legal(&p, &deps, i, 1).expect("legality"));
}

// ---------------------------------------------------------------- E5 (§5)

#[test]
fn e5_skew_codegen_executes_identically() {
    // §5.4–5.5 worked example, end to end through the public API.
    let p = zoo::augmentation_example();
    let result = inl::codegen::generate_seq(
        &p,
        &[Transform::Skew {
            target: looop(&p, "I"),
            source: looop(&p, "J"),
            factor: -1,
        }],
    )
    .expect("codegen");
    for n in [1, 2, 4, 9] {
        equivalent(&p, &result.program, &[n], &|_, _| 0.5)
            .unwrap_or_else(|e| panic!("N={n}: {e}\n{}", result.program.to_pseudocode()));
    }
    // the augmented loop exists: S1 is nested two deep in the target
    let s1_new = result.stmt_map[stmt(&p, "S1").0];
    assert_eq!(result.program.loops_surrounding(s1_new).len(), 2);
}

#[test]
fn e5_legality_report_flags_unsatisfied_self_deps() {
    let p = zoo::augmentation_example();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let m = Transform::Skew {
        target: looop(&p, "I"),
        source: looop(&p, "J"),
        factor: -1,
    }
    .matrix(&p, &layout);
    let report = check_legal(&p, &layout, &deps, &m).expect("legality");
    assert!(report.is_legal());
    assert!(!report.unsatisfied_self.is_empty());
}
