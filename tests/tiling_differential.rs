//! Differential property tests for loop splitting (`inl::core::tiling`).
//!
//! Strip-mining is order-preserving, so a split program must be
//! **observationally identical** to its source — same cells, same final
//! values — and, like every program, **bitwise identical** across the
//! interpreter and VM backends. This file checks both, for *any* legal
//! split of *any* step-1 loop of *any* zoo program, at random tile sizes
//! and parameter bindings, under the same two adversarial initial-state
//! regimes the VM differential uses.

use inl::core::tiling::{split, split_legal};
use inl::exec::{run_fresh_with, Backend};
use inl::ir::{zoo, LoopId, Program};
use proptest::prelude::*;

fn zoo_programs() -> Vec<Program> {
    vec![
        zoo::simple_cholesky(),
        zoo::running_example(),
        zoo::perfect_nest(),
        zoo::augmentation_example(),
        zoo::cholesky_kij(),
        zoo::cholesky_left_looking(),
        zoo::lu_kij(),
        zoo::matmul(),
        zoo::wavefront(),
        zoo::rect_wavefront(),
        zoo::row_prefix_sums(),
        zoo::distributed_simple_cholesky(),
        zoo::independent_pair(),
    ]
}

fn arb_zoo() -> impl Strategy<Value = Program> {
    let n = zoo_programs().len();
    (0..n).prop_map(|i| zoo_programs().swap_remove(i))
}

/// Non-integer initial values: every arithmetic op's rounding matters.
fn frac_init(_: &str, idx: &[usize]) -> f64 {
    let mix: usize = idx
        .iter()
        .enumerate()
        .map(|(d, &i)| (d + 2) * (i + 1))
        .sum();
    mix as f64 * 0.375 + 0.5
}

/// Integer initial values from a wrapping-`i64` mixing function (see
/// `vm_differential.rs` for why `>> 40`).
fn int_init(name: &str, idx: &[usize]) -> f64 {
    let mut h: i64 = name.len() as i64;
    for &i in idx {
        h = h
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as i64)
            .wrapping_add(1442695040888963407);
    }
    ((h >> 40) as f64).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any legal split of any step-1 zoo loop re-executes bitwise
    /// identically to its source program, on both backends.
    #[test]
    fn legal_splits_are_bitwise_identical_on_both_backends(
        (p, which, tile, ns) in arb_zoo().prop_flat_map(|p| {
            let nloops = p.loops().count();
            let ns = prop::collection::vec(1i64..10, p.nparams());
            (Just(p), 0..nloops, 2i64..=64, ns)
        })
    ) {
        let l = LoopId(which);
        if p.loop_decl(l).step != 1 {
            return Ok(()); // splitting is defined for step-1 loops only
        }
        let r = split(&p, l, tile as i128).expect("step-1 split");
        let report = split_legal(&r).expect("legality analysis");
        prop_assert!(
            report.is_legal(),
            "strip-mining {} of {} must be order-preserving",
            p.loop_decl(l).name, p.name()
        );
        let params: Vec<i128> = ns.iter().map(|&n| n as i128).collect();
        for (regime, init) in [
            ("frac", &frac_init as &dyn Fn(&str, &[usize]) -> f64),
            ("i64-wrap", &int_init),
        ] {
            let src = run_fresh_with(Backend::Interp, &p, &params, init);
            let tiled = run_fresh_with(Backend::Interp, &r.program, &params, init);
            prop_assert!(
                src.same_state(&tiled).is_ok(),
                "split of {} diverged from source ({regime} init, tile {tile}, params {params:?}): {}",
                p.name(), src.same_state(&tiled).unwrap_err()
            );
            let vm = run_fresh_with(Backend::Vm, &r.program, &params, init);
            prop_assert!(
                tiled.same_state(&vm).is_ok(),
                "split of {} differs across backends ({regime} init, tile {tile}): {}",
                p.name(), tiled.same_state(&vm).unwrap_err()
            );
        }
    }
}
