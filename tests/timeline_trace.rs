//! Timeline-trace integration test: a parallel Cholesky run (inner J
//! loop certified dependence-free by the framework and marked DOALL)
//! must produce a well-formed Chrome trace-event document with
//! per-thread wavefront slices — main thread records `exec.par.wavefront`
//! spans, each worker records `exec.par.chunk` slices on its own tid.

use inl::core::depend::analyze;
use inl::core::instance::{InstanceLayout, Position};
use inl::core::legal::check_legal;
use inl::core::parallel::parallel_slots;
use inl::exec::{run_fresh, Machine, ParallelExecutor};
use inl::ir::zoo;
use inl::linalg::IMat;
use inl::obs::Json;

fn spdish(_: &str, idx: &[usize]) -> f64 {
    if idx.len() == 2 && idx[0] == idx[1] {
        (idx[0] + 10) as f64
    } else {
        1.0 / ((idx.iter().sum::<usize>() + 1) as f64)
    }
}

fn as_array(j: Option<&Json>) -> &[Json] {
    match j {
        Some(Json::Array(items)) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn parallel_cholesky_trace_loads_as_chrome_json_with_worker_tids() {
    // The framework certifies the inner J loop of simple_cholesky as
    // parallel under the identity schedule (the divisions of one pivot
    // step are independent) — mark it DOALL on that basis, not by fiat.
    let mut p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let id = IMat::identity(layout.len());
    let report = check_legal(&p, &layout, &deps, &id).expect("legality");
    let ast = report.new_ast.as_ref().expect("identity schedule is legal");
    let slots = parallel_slots(&layout, &deps, ast, &id);
    let j = p.loops().find(|&l| p.loop_decl(l).name == "J").unwrap();
    let jslot = layout
        .positions()
        .iter()
        .position(|pos| matches!(pos, Position::Loop(l) if *l == j))
        .unwrap();
    assert!(slots.contains(&jslot), "J certified parallel: {slots:?}");
    p.set_loop_parallel(j, true);

    inl::obs::set_timeline_enabled(true);
    inl::obs::timeline::reset();
    let n: i128 = 64;
    let reference = run_fresh(&p, &[n], &spdish);
    let mut par = Machine::new(&p, &[n], &spdish);
    ParallelExecutor::new(&p, 4).run(&mut par);
    reference
        .same_state(&par)
        .expect("parallel run bitwise identical");
    inl::obs::set_timeline_enabled(false);

    // The export must round-trip through the serializer/parser (i.e. be
    // well-formed JSON) and follow the Chrome trace-event format.
    let text = inl::obs::timeline::export_chrome_trace().to_pretty_string();
    let doc = Json::parse(&text).expect("trace is well-formed JSON");
    let events = as_array(doc.get("traceEvents"));
    assert!(!events.is_empty(), "trace has events");

    let mut wavefront_tids = Vec::new();
    let mut chunk_tids = Vec::new();
    let mut tids = Vec::new();
    for e in events {
        let name = e.get("name").and_then(Json::as_str).expect("event name");
        let ph = e.get("ph").and_then(Json::as_str).expect("event phase");
        assert!(e.get("pid").and_then(Json::as_u64).is_some(), "pid");
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        match ph {
            "M" => {
                // thread_name metadata
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
                continue;
            }
            "X" => {
                assert!(matches!(e.get("ts"), Some(Json::Float(_))), "ts µs");
                assert!(matches!(e.get("dur"), Some(Json::Float(_))), "dur µs");
            }
            "i" => {
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        match name {
            "exec.par.wavefront" => wavefront_tids.push(tid),
            "exec.par.chunk" => {
                // chunk slices carry their iteration bounds
                let args = e.get("args").expect("chunk args");
                assert!(args.get("lo").is_some() && args.get("hi").is_some());
                chunk_tids.push(tid);
            }
            _ => {}
        }
    }

    assert!(
        !wavefront_tids.is_empty(),
        "main thread recorded wavefront slices"
    );
    assert!(!chunk_tids.is_empty(), "workers recorded chunk slices");
    // Worker chunks run on their own threads: at least one chunk tid must
    // differ from the main thread's wavefront tid.
    let main_tid = wavefront_tids[0];
    assert!(
        chunk_tids.iter().any(|&t| t != main_tid),
        "chunk slices on a worker tid (main={main_tid}, chunks={chunk_tids:?})"
    );
    assert!(tids.len() >= 2, "≥2 distinct tids: {tids:?}");
}
