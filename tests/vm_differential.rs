//! Differential property tests for the bytecode VM (`inl-vm`).
//!
//! The VM is a second backend and must be **bitwise identical** to the
//! reference interpreter — same `f64` operations in the same order — on:
//!
//! * every zoo program,
//! * random legal transformations of zoo programs (whatever `generate`
//!   accepts, including non-unimodular results with `Div` guards and
//!   divisor subscripts, which exercise the VM's slow access path),
//! * random parameter bindings,
//!
//! under two initial-state regimes:
//!
//! * **fractional f64** — cells start at non-integer values, so rounding
//!   of every arithmetic op matters;
//! * **i64-wrapping integers** — cells start at (exactly representable)
//!   integers produced by a wrapping-`i64` mixing function, the adversarial
//!   case for sign/magnitude handling in subscript and index arithmetic.

use inl::codegen::generate;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::transform::Transform;
use inl::exec::{run_fresh_with, Backend};
use inl::ir::{zoo, Program};
use proptest::prelude::*;

fn zoo_programs() -> Vec<Program> {
    vec![
        zoo::simple_cholesky(),
        zoo::running_example(),
        zoo::perfect_nest(),
        zoo::augmentation_example(),
        zoo::cholesky_kij(),
        zoo::cholesky_left_looking(),
        zoo::lu_kij(),
        zoo::matmul(),
        zoo::wavefront(),
        zoo::rect_wavefront(),
        zoo::row_prefix_sums(),
        zoo::distributed_simple_cholesky(),
        zoo::independent_pair(),
    ]
}

fn arb_zoo() -> impl Strategy<Value = Program> {
    let n = zoo_programs().len();
    (0..n).prop_map(|i| zoo_programs().swap_remove(i))
}

/// A random transformation sequence over the program's loops/statements
/// (same shape as the framework-level property tests).
fn arb_transforms(p: &Program) -> impl Strategy<Value = Vec<Transform>> {
    let loops: Vec<_> = p.loops().collect();
    let stmts: Vec<_> = p.stmts().collect();
    let single = (
        0..5usize,
        0..loops.len(),
        0..loops.len(),
        -2..=2i64,
        0..stmts.len(),
    )
        .prop_map(move |(kind, a, b, f, s)| match kind {
            0 => Transform::Interchange(loops[a], loops[b % loops.len().max(1)]),
            1 => Transform::Reverse(loops[a]),
            2 => Transform::Skew {
                target: loops[a],
                source: loops[b % loops.len()],
                factor: f as i128,
            },
            3 => Transform::Scale {
                target: loops[a],
                factor: (f.unsigned_abs() as i128) + 1,
            },
            _ => Transform::Align {
                stmt: stmts[s],
                looop: loops[a],
                offset: f as i128,
            },
        });
    prop::collection::vec(single, 1..3)
}

/// Non-integer initial values: every arithmetic op's rounding matters.
fn frac_init(_: &str, idx: &[usize]) -> f64 {
    let mix: usize = idx
        .iter()
        .enumerate()
        .map(|(d, &i)| (d + 2) * (i + 1))
        .sum();
    mix as f64 * 0.375 + 0.5
}

/// Integer initial values from a wrapping-`i64` mixing function; the
/// `>> 40` keeps magnitudes ≲ 2²³ so every value (and products of a few)
/// is exactly representable in f64.
fn int_init(name: &str, idx: &[usize]) -> f64 {
    let mut h: i64 = name.len() as i64;
    for &i in idx {
        h = h
            .wrapping_mul(6364136223846793005)
            .wrapping_add(i as i64)
            .wrapping_add(1442695040888963407);
    }
    ((h >> 40) as f64).max(1.0) // keep pivots nonzero-ish for divisions
}

/// Assert VM ≡ interpreter, bitwise, on `p` under both init regimes.
fn assert_vm_identical(p: &Program, params: &[i128], ctx: &str) -> Result<(), TestCaseError> {
    for (regime, init) in [
        ("frac", &frac_init as &dyn Fn(&str, &[usize]) -> f64),
        ("i64-wrap", &int_init),
    ] {
        let a = run_fresh_with(Backend::Interp, p, params, init);
        let b = run_fresh_with(Backend::Vm, p, params, init);
        prop_assert!(
            a.same_state(&b).is_ok(),
            "{ctx}: VM differs from interpreter ({regime} init, params {params:?}): {}",
            a.same_state(&b).unwrap_err()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// VM ≡ interpreter on zoo programs at random parameter bindings.
    #[test]
    fn vm_matches_interpreter_on_zoo(
        (p, ns) in arb_zoo().prop_flat_map(|p| {
            let ns = prop::collection::vec(1i64..8, p.nparams());
            (Just(p), ns)
        })
    ) {
        let params: Vec<i128> = ns.iter().map(|&n| n as i128).collect();
        assert_vm_identical(&p, &params, p.name())?;
    }

    /// VM ≡ interpreter on framework-generated variants of zoo programs
    /// under random transformation sequences (whenever the framework
    /// accepts the transformation and generates code).
    #[test]
    fn vm_matches_interpreter_on_transformed_zoo(
        (p, seq, ns) in arb_zoo().prop_flat_map(|p| {
            let t = arb_transforms(&p);
            let ns = prop::collection::vec(1i64..6, p.nparams());
            (Just(p), t, ns)
        })
    ) {
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let Ok(m) = Transform::compose(&p, &layout, &seq) else {
            return Ok(()); // structurally invalid transform
        };
        let Ok(result) = generate(&p, &layout, &deps, &m) else {
            return Ok(()); // rejected as illegal or unsupported: fine
        };
        let params: Vec<i128> = ns.iter().map(|&n| n as i128).collect();
        assert_vm_identical(
            &result.program,
            &params,
            &format!("{} under {seq:?}", p.name()),
        )?;
    }
}
