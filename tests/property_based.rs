//! Property-based tests on the framework's invariants:
//!
//! * Theorem 1: execution order = lexicographic order on instance vectors,
//!   for *random* imperfectly nested programs;
//! * legality soundness: any legal transformation of a random program over
//!   a random transformation sequence generates code that executes
//!   bitwise identically;
//! * dependence soundness: if the checker declares a matrix legal with no
//!   unsatisfied dependences, execution agrees.

use inl::codegen::generate;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::transform::Transform;
use inl::exec::{equivalent, run_traced};
use inl::ir::{Aff, Expr, Program, ProgramBuilder};
use inl::linalg::lex::lex_cmp;
use proptest::prelude::*;
use std::cmp::Ordering;

/// A random imperfectly nested program over one parameter N and one or two
/// arrays. The generator chooses a shape (how statements and an inner loop
/// interleave) and per-statement affine accesses with small offsets.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        0..3usize,       // shape selector
        -1..=1i64,       // read offset a
        -1..=1i64,       // read offset b
        prop::bool::ANY, // inner loop triangular?
        prop::bool::ANY, // second statement reads x or y
    )
        .prop_map(|(shape, oa, ob, triangular, cross)| {
            build_program(shape, oa as i128, ob as i128, triangular, cross)
        })
}

fn build_program(shape: usize, oa: i128, ob: i128, triangular: bool, cross: bool) -> Program {
    let mut b = ProgramBuilder::new(format!("rand_{shape}_{oa}_{ob}_{triangular}_{cross}"));
    let n = b.param("N");
    // generous extents so offsets of ±1 stay in range (indices shifted +2)
    let ext = Aff::param(n) + Aff::konst(4);
    let x = b.array("X", &[ext.clone(), ext.clone()]);
    let y = b.array("Y", &[ext.clone(), ext.clone()]);
    let sh = |v: Aff| v + Aff::konst(2); // index shift
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        if shape != 1 {
            b.stmt(
                "S1",
                x,
                vec![sh(Aff::var(i)), sh(Aff::var(i))],
                Expr::add(
                    Expr::read(x, vec![sh(Aff::var(i) + Aff::konst(oa)), sh(Aff::var(i))]),
                    Expr::konst(1.0),
                ),
            );
        }
        let jlo = if triangular {
            Aff::var(i)
        } else {
            Aff::konst(1)
        };
        b.hloop("J", jlo, Aff::param(n), |b| {
            let i = b.loop_var("I");
            let j = b.loop_var("J");
            let src = if cross { x } else { y };
            b.stmt(
                "S2",
                y,
                vec![sh(Aff::var(i)), sh(Aff::var(j))],
                Expr::add(
                    Expr::read(src, vec![sh(Aff::var(i) + Aff::konst(ob)), sh(Aff::var(j))]),
                    Expr::index(Aff::var(i) + Aff::var(j)),
                ),
            );
        });
        if shape == 2 {
            b.stmt(
                "S3",
                x,
                vec![sh(Aff::var(i)), sh(Aff::konst(0))],
                Expr::read(y, vec![sh(Aff::var(i)), sh(Aff::konst(1))]),
            );
        }
    });
    b.finish()
}

/// A random transformation sequence over the program's loops/statements.
fn arb_transforms(p: &Program) -> impl Strategy<Value = Vec<Transform>> {
    let loops: Vec<_> = p.loops().collect();
    let stmts: Vec<_> = p.stmts().collect();
    let single = (
        0..5usize,
        0..loops.len(),
        0..loops.len(),
        -2..=2i64,
        0..stmts.len(),
    )
        .prop_map(move |(kind, a, b, f, s)| match kind {
            0 => Transform::Interchange(loops[a], loops[b % loops.len().max(1)]),
            1 => Transform::Reverse(loops[a]),
            2 => Transform::Skew {
                target: loops[a],
                source: loops[b % loops.len()],
                factor: f as i128,
            },
            3 => Transform::Scale {
                target: loops[a],
                factor: (f.unsigned_abs() as i128) + 1,
            },
            _ => Transform::Align {
                stmt: stmts[s],
                looop: loops[a],
                offset: f as i128,
            },
        });
    prop::collection::vec(single, 1..3)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Theorem 1 holds on random programs.
    #[test]
    fn execution_order_is_lex_order((p, n) in arb_program().prop_flat_map(|p| (Just(p), 1i64..5))) {
        let layout = InstanceLayout::new(&p);
        let (_, trace) = run_traced(&p, &[n as i128], &|_, _| 0.0);
        let vecs: Vec<_> = trace
            .instances
            .iter()
            .map(|r| layout.instance_vector(r.stmt, &r.iter))
            .collect();
        for w in vecs.windows(2) {
            prop_assert_eq!(lex_cmp(&w[0], &w[1]), Ordering::Less);
        }
    }

    /// Soundness: whenever the framework accepts a transformation and
    /// generates code, execution is bitwise identical.
    #[test]
    fn legal_codegen_is_semantics_preserving(
        (p, seq) in arb_program().prop_flat_map(|p| {
            let t = arb_transforms(&p);
            (Just(p), t)
        })
    ) {
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let Ok(m) = Transform::compose(&p, &layout, &seq) else {
            return Ok(()); // structurally invalid transform (e.g. alignment without edge)
        };
        let Ok(result) = generate(&p, &layout, &deps, &m) else {
            return Ok(()); // rejected as illegal or unsupported: fine
        };
        for n in [1i128, 2, 4] {
            let r = equivalent(&p, &result.program, &[n], &|_, idx| {
                (idx[0] * 7 + idx.get(1).copied().unwrap_or(0) * 3 + 1) as f64 * 0.125
            });
            prop_assert!(
                r.is_ok(),
                "seq {:?} on {}: {}\nsource:\n{}\ntarget:\n{}",
                seq,
                p.name(),
                r.unwrap_err(),
                p.to_pseudocode(),
                result.program.to_pseudocode()
            );
        }
    }

    /// The dependence matrix always has lexicographically non-negative
    /// instance-vector differences (execution order).
    #[test]
    fn dependences_are_lex_nonnegative(p in arb_program()) {
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        for d in &deps.deps {
            let lead = d.entries.iter().find(|e| !e.is_zero());
            if let Some(e) = lead {
                prop_assert!(
                    e.lo.is_some_and(|l| l >= 0),
                    "dependence with lex-negative difference: {}",
                    deps.display()
                );
            }
        }
    }
}
