//! Differential test for the poly query cache: generated code must be
//! bitwise identical with the cache disabled, cold, and fully warm.
//!
//! This is the end-to-end guarantee behind `INL_POLY_CACHE`: the cache
//! memoizes a deterministic function of the *canonicalized* constraint
//! system, so it can never change what the pipeline produces — only how
//! fast it produces it. The twelve legal Cholesky loop-order variants
//! exercise every cached query kind (projection, feasibility, variable
//! bounds) through dependence analysis, legality, completion, and codegen.

use inl_codegen::generate;
use inl_core::complete::complete_transform;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_ir::{zoo, Program};
use inl_linalg::{IMat, IVec};
use std::sync::Mutex;

/// The cache toggle is process-global; tests flipping it must serialize.
static CACHE_TOGGLE: Mutex<()> = Mutex::new(());

/// All legal Cholesky loop-order variants, enumerated the same way the
/// bench sweep does: every permutation of the four loops, completed to a
/// full transformation where legal.
fn cholesky_variants() -> (Program, Vec<(String, IMat)>) {
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let names = ["K", "J", "L", "I"];
    let positions: Vec<usize> = names
        .iter()
        .map(|nm| {
            let l = p.loops().find(|&l| p.loop_decl(l).name == *nm).unwrap();
            layout.loop_position(l)
        })
        .collect();
    let mut out = Vec::new();
    for pm in permutations(&[0, 1, 2, 3]) {
        let label: String = pm.iter().map(|&i| names[i]).collect::<Vec<_>>().join("");
        let rows: Vec<IVec> = pm
            .iter()
            .map(|&i| IVec::unit(layout.len(), positions[i]))
            .collect();
        if let Ok(c) = complete_transform(&p, &layout, &deps, &rows) {
            out.push((label, c.matrix));
        }
    }
    (p, out)
}

fn permutations(v: &[usize]) -> Vec<Vec<usize>> {
    if v.len() <= 1 {
        return vec![v.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..v.len() {
        let mut rest = v.to_vec();
        let x = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// Run the full pipeline over every variant and return the generated
/// pseudocode per variant, in variant order.
fn compile_all(p: &Program, variants: &[(String, IMat)]) -> Vec<String> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).expect("analysis");
    variants
        .iter()
        .map(|(label, m)| {
            let r = generate(p, &layout, &deps, m)
                .unwrap_or_else(|e| panic!("variant {label} failed to generate: {e:?}"));
            r.program.to_pseudocode()
        })
        .collect()
}

#[test]
fn all_cholesky_variants_identical_with_cache_on_and_off() {
    let _l = CACHE_TOGGLE.lock().unwrap();
    let (p, variants) = cholesky_variants();
    assert_eq!(variants.len(), 12, "the legal Cholesky sweep has 12 orders");

    // Ground truth: cache disabled entirely.
    inl_poly::set_cache_enabled(false);
    inl_poly::cache::clear();
    let uncached = compile_all(&p, &variants);

    // Cold cache: every query misses then populates.
    inl_poly::set_cache_enabled(true);
    inl_poly::cache::clear();
    inl_poly::cache::reset_stats();
    let cold = compile_all(&p, &variants);
    let after_cold = inl_poly::cache::stats();
    assert!(
        after_cold.insertions > 0,
        "the sweep must actually exercise the cache"
    );

    // Warm cache: repeated sub-systems across variants now hit.
    let warm = compile_all(&p, &variants);
    let after_warm = inl_poly::cache::stats();
    assert!(
        after_warm.hits > after_cold.hits,
        "a second sweep over a warm cache must hit"
    );

    inl_poly::set_cache_enabled(true);
    for (i, (label, _)) in variants.iter().enumerate() {
        assert_eq!(
            uncached[i], cold[i],
            "variant {label}: cold cache changed generated code"
        );
        assert_eq!(
            uncached[i], warm[i],
            "variant {label}: warm cache changed generated code"
        );
    }
}
